// Package resilience is the degraded-mode policy of the serving engine's
// load path: per-request deadlines, cost-aware retry budgets with capped
// exponential backoff and deterministic seeded jitter, and per-cost-class
// circuit breakers (closed → open → half-open) over failure-rate ring
// buffers.
//
// The paper's premise — misses have non-uniform costs — extends naturally to
// failure handling: a high-cost key is expensive to lose, so its load earns
// the full retry budget, while a cheap key fails fast; and because backend
// health often degrades per class (one slow origin, one browned-out
// datacenter), breakers track failure rates per cost class, shedding only
// the traffic that is actually melting.
//
// Everything observable is deterministic in operation order: breakers trip
// on outcome counts (never wall time), backoff jitter is a pure hash of
// (seed, key, attempt), and cooldown is counted in shed loads. A
// single-worker closed-loop run therefore produces bit-identical
// shed/trip/probe sequences across reruns. See docs/ENGINE.md
// "Degraded-mode serving".
package resilience

import (
	"fmt"
	"sync"
	"time"

	"costcache/internal/obs"
	"costcache/internal/replacement"
)

// Config parameterizes the resilient load path. The zero value disables
// everything (Enabled() == false); the engine then keeps its legacy inline
// load path, bit-identical with pre-resilience behavior.
type Config struct {
	// Deadline bounds every GetOrLoad call: a leader or coalesced waiter
	// whose deadline expires returns engine.ErrLoadTimeout (or a stale
	// value) while the load itself continues in the background and still
	// fills the cache. 0 means no deadline.
	Deadline time.Duration
	// MaxRetries is the retry budget a key of class RefCost earns (on top
	// of the initial attempt). Cheaper classes earn proportionally fewer:
	// floor(MaxRetries × class / RefCost), so the cheapest keys fail fast.
	// 0 disables retries.
	MaxRetries int
	// RefCost is the cost class earning the full MaxRetries budget
	// (0 means 8, the default high cost of the paper's random mapping).
	RefCost replacement.Cost
	// BackoffBase is the wait before the first retry; each further retry
	// doubles it up to BackoffCap, then deterministic jitter in [50%, 100%)
	// of the capped value is applied. 0 retries immediately (what the
	// deterministic CI chaos runs use).
	BackoffBase time.Duration
	// BackoffCap caps the exponential backoff (0 means 32 × BackoffBase).
	BackoffCap time.Duration
	// Seed drives the backoff jitter hash.
	Seed uint64
	// BreakerRate is the failure-rate threshold in (0, 1] at which a
	// class's breaker opens. 0 disables breakers.
	BreakerRate float64
	// BreakerWindow is how many recent load outcomes per class the failure
	// rate is computed over (0 means 64).
	BreakerWindow int
	// BreakerMin is the minimum outcomes in the window before the breaker
	// may trip (0 means 16) — a floor against tripping on tiny samples.
	BreakerMin int
	// BreakerCooldown is how many loads an open breaker sheds before
	// letting one half-open probe through (0 means 256). Counting sheds
	// instead of wall time keeps runs deterministic.
	BreakerCooldown int
	// ServeStale lets the engine answer from evicted-but-retained ghost
	// values (flagged stale, charging zero cost) when the breaker is open
	// or the deadline expires.
	ServeStale bool
	// Classify predicts a key's cost class before its loader has run —
	// the same cost source the load generator charges makes breakers and
	// retry budgets see the class a miss will pay. nil falls back to the
	// key's last known cost (its ghost), else class 0.
	Classify func(key uint64) replacement.Cost
}

// Enabled reports whether any resilience mechanism is configured.
func (c Config) Enabled() bool {
	return c.Deadline > 0 || c.MaxRetries > 0 || c.BreakerRate > 0 || c.ServeStale
}

// withDefaults fills the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.RefCost == 0 {
		c.RefCost = 8
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 32 * c.BackoffBase
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 64
	}
	if c.BreakerMin == 0 {
		c.BreakerMin = 16
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 256
	}
	return c
}

// Validate checks the configuration ranges (flag parsing surfaces these as
// exit-2 usage errors).
func (c Config) Validate() error {
	if c.Deadline < 0 {
		return fmt.Errorf("resilience: negative Deadline")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("resilience: negative MaxRetries")
	}
	if c.RefCost < 0 {
		return fmt.Errorf("resilience: negative RefCost")
	}
	if c.BackoffBase < 0 || c.BackoffCap < 0 {
		return fmt.Errorf("resilience: negative backoff")
	}
	if c.BreakerRate < 0 || c.BreakerRate > 1 {
		return fmt.Errorf("resilience: BreakerRate %g outside [0, 1]", c.BreakerRate)
	}
	if c.BreakerWindow < 0 || c.BreakerMin < 0 || c.BreakerCooldown < 0 {
		return fmt.Errorf("resilience: negative breaker window/min/cooldown")
	}
	if c.BreakerMin > c.BreakerWindow && c.BreakerWindow > 0 {
		return fmt.Errorf("resilience: BreakerMin %d exceeds BreakerWindow %d", c.BreakerMin, c.BreakerWindow)
	}
	return nil
}

// State is a breaker's position in the closed → open → half-open cycle.
type State int

const (
	// Closed: traffic flows, outcomes feed the failure-rate window.
	Closed State = iota
	// HalfOpen: one probe load is admitted; its outcome closes or reopens.
	HalfOpen
	// Open: loads are shed (served stale or failed fast) until the
	// cooldown count elapses.
	Open
)

func (s State) String() string {
	switch s {
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "closed"
}

// breaker is one cost class's circuit breaker. All fields are guarded by
// the Resilience mutex; the ring holds the last cap(ring) load outcomes
// (true = failure).
type breaker struct {
	state    State
	ring     []bool
	head, n  int
	fails    int
	shedLeft int  // Open: sheds remaining before the half-open probe
	probing  bool // HalfOpen: the probe is in flight
	openedN  int64
	gauge    *obs.Gauge
	opened   *obs.Counter
}

// BreakerStatus is one class's breaker standing, for /debug/engine.
type BreakerStatus struct {
	// Class is the cost class ("cost=N", matching decision-trace tags).
	Class string `json:"class"`
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Samples and FailureRate describe the rolling outcome window.
	Samples     int     `json:"samples"`
	FailureRate float64 `json:"failure_rate"`
	// Opened counts transitions into Open.
	Opened int64 `json:"opened"`
}

// Resilience is the engine-facing policy object. All methods are safe for
// concurrent use; breakers are created lazily per cost class.
type Resilience struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	breakers map[replacement.Cost]*breaker
	classes  []replacement.Cost // breaker creation order, for stable snapshots
	opened   int64              // total trips across classes
}

// New builds a Resilience from cfg (panicking on an invalid config — flag
// validation happens before this). reg, when non-nil, receives a per-class
// engine_breaker_state gauge (0 closed, 1 half-open, 2 open) and
// engine_breaker_opened counter as classes appear.
func New(cfg Config, reg *obs.Registry) *Resilience {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Resilience{
		cfg:      cfg.withDefaults(),
		reg:      reg,
		breakers: make(map[replacement.Cost]*breaker),
	}
}

// Deadline returns the per-request load budget (0 = none).
func (r *Resilience) Deadline() time.Duration { return r.cfg.Deadline }

// ServeStale reports whether ghost values may answer degraded requests.
func (r *Resilience) ServeStale() bool { return r.cfg.ServeStale }

// HasClassifier reports whether a Classify function is configured.
func (r *Resilience) HasClassifier() bool { return r.cfg.Classify != nil }

// Class predicts key's cost class via the configured classifier (0 without
// one; the engine then falls back to the key's ghost cost).
func (r *Resilience) Class(key uint64) replacement.Cost {
	if r.cfg.Classify == nil {
		return 0
	}
	return r.cfg.Classify(key)
}

// Budget returns the retry budget (extra attempts after the first) a key of
// cost class c earns: floor(MaxRetries × c / RefCost), capped at
// MaxRetries. Class 0 keys never retry.
func (r *Resilience) Budget(c replacement.Cost) int {
	if r.cfg.MaxRetries <= 0 || c <= 0 {
		return 0
	}
	b := int(int64(c) * int64(r.cfg.MaxRetries) / int64(r.cfg.RefCost))
	if b > r.cfg.MaxRetries {
		b = r.cfg.MaxRetries
	}
	return b
}

// Backoff returns the wait before retry attempt (1-based): exponential from
// BackoffBase, capped at BackoffCap, with deterministic jitter in
// [50%, 100%) of the capped value hashed from (Seed, key, attempt) — the
// decorrelation real backends need, without sacrificing reproducibility.
func (r *Resilience) Backoff(key uint64, attempt int) time.Duration {
	if r.cfg.BackoffBase <= 0 || attempt <= 0 {
		return 0
	}
	d := r.cfg.BackoffBase
	for i := 1; i < attempt && d < r.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > r.cfg.BackoffCap {
		d = r.cfg.BackoffCap
	}
	h := hash64(r.cfg.Seed ^ key*0x9e3779b97f4a7c15 ^ uint64(attempt)<<48)
	frac := float64(h>>11) / float64(1<<53) // [0, 1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// hash64 is the SplitMix64 finalizer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// classLabel renders the canonical class label value, matching the decision
// tracer's stable cost tags.
func classLabel(c replacement.Cost) string {
	return string(replacement.AppendClass(nil, c))
}

// get returns (creating if needed) the breaker for class c (mu held).
func (r *Resilience) get(c replacement.Cost) *breaker {
	b, ok := r.breakers[c]
	if !ok {
		b = &breaker{ring: make([]bool, r.cfg.BreakerWindow)}
		if r.reg != nil {
			b.gauge = r.reg.Gauge(obs.Name("engine_breaker_state", "class", classLabel(c)))
			b.opened = r.reg.Counter(obs.Name("engine_breaker_opened", "class", classLabel(c)))
		}
		r.breakers[c] = b
		r.classes = append(r.classes, c)
	}
	return b
}

// setState moves b to s and mirrors it into the gauge (mu held).
func (b *breaker) setState(s State) {
	b.state = s
	if b.gauge != nil {
		b.gauge.Set(int64(s))
	}
}

// Allow decides whether a load for cost class c may run. false means the
// load is shed: the engine serves stale or fails fast with ErrShed, and the
// shed advances the open breaker's cooldown. When the cooldown elapses the
// breaker goes half-open and admits exactly one probe.
func (r *Resilience) Allow(c replacement.Cost) bool {
	if r.cfg.BreakerRate <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.get(c)
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.shedLeft > 0 {
			b.shedLeft--
			return false
		}
		b.setState(HalfOpen)
		b.probing = false
		fallthrough
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds one load outcome into class c's breaker. A half-open probe's
// success closes the breaker (resetting the window); its failure reopens it
// for another cooldown. In the closed state the outcome enters the rolling
// window, and the breaker trips once the window holds at least BreakerMin
// outcomes with a failure rate at or above BreakerRate.
func (r *Resilience) Report(c replacement.Cost, ok bool) {
	if r.cfg.BreakerRate <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.get(c)
	switch b.state {
	case HalfOpen:
		if ok {
			b.setState(Closed)
			b.head, b.n, b.fails = 0, 0, 0
			for i := range b.ring {
				b.ring[i] = false
			}
		} else {
			r.trip(b)
		}
		b.probing = false
	case Closed:
		if b.n == len(b.ring) { // full: evict the oldest outcome
			if b.ring[b.head] {
				b.fails--
			}
		} else {
			b.n++
		}
		b.ring[b.head] = !ok
		if !ok {
			b.fails++
		}
		b.head = (b.head + 1) % len(b.ring)
		if b.n >= r.cfg.BreakerMin && float64(b.fails) >= r.cfg.BreakerRate*float64(b.n) {
			r.trip(b)
		}
	default: // Open: a straggler from before the trip; the window is closed to it.
	}
}

// trip opens b and starts its cooldown (mu held).
func (r *Resilience) trip(b *breaker) {
	b.setState(Open)
	b.shedLeft = r.cfg.BreakerCooldown
	b.openedN++
	r.opened++
	if b.opened != nil {
		b.opened.Inc()
	}
}

// Tripped reports whether class c's breaker is currently open — the retry
// loop stops burning its budget once the class is known bad.
func (r *Resilience) Tripped(c replacement.Cost) bool {
	if r.cfg.BreakerRate <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[c]
	return ok && b.state == Open
}

// Opened returns the total breaker trips across classes.
func (r *Resilience) Opened() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opened
}

// Snapshot returns every known class's breaker standing, in class creation
// order (deterministic for deterministic streams).
func (r *Resilience) Snapshot() []BreakerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BreakerStatus, 0, len(r.classes))
	for _, c := range r.classes {
		b := r.breakers[c]
		st := BreakerStatus{
			Class:   classLabel(c),
			State:   b.state.String(),
			Samples: b.n,
			Opened:  b.openedN,
		}
		if b.n > 0 {
			st.FailureRate = float64(b.fails) / float64(b.n)
		}
		out = append(out, st)
	}
	return out
}
