package coherence

import (
	"testing"

	"costcache/internal/mesh"
)

// machine builds a 4x4 machine homing every block at the given node.
func machine(homeNode int, hints bool) *Machine {
	p := DefaultParams()
	p.Hints = hints
	net := mesh.New(mesh.Default())
	return New(p, net, func(uint64) int { return homeNode })
}

func TestLocalCleanUnloadedLatency(t *testing.T) {
	m := machine(0, true)
	res := m.Read(0, 1, 0)
	// NIBase 13 + dir 20 + mem 60 + NIBase 13 = 106 (the processor adds
	// L1+L2 lookup to reach Table 4's 120 ns).
	if res.Unloaded != 106 {
		t.Fatalf("local clean unloaded = %d, want 106", res.Unloaded)
	}
	if res.StateBefore != Uncached {
		t.Fatalf("state before = %v", res.StateBefore)
	}
	if m.StateOf(1) != Exclusive {
		t.Fatalf("MESI read to uncached must grant Exclusive, got %v", m.StateOf(1))
	}
}

func TestRemoteCleanUnloadedLatency(t *testing.T) {
	m := machine(1, true) // home is node 1, one hop from node 0
	res := m.Read(0, 1, 0)
	// ctrl 122 + dir 20 + mem 60 + data 164 = 366 (+14 L1/L2 = 380, Table 4).
	if res.Unloaded != 366 {
		t.Fatalf("remote clean unloaded = %d, want 366", res.Unloaded)
	}
}

func TestRemoteDirtyUnloadedLatency(t *testing.T) {
	m := machine(1, true)
	m.Write(2, 1, 0) // node 2 dirties the block (home 1)
	res := m.Read(0, 1, 10000)
	// ctrl(0->1) 122 + dir 20 + fwd(1->2) 122 + lookup 12 + data(2->0) 2 hops
	// = 102+2*62=226 -> total 502... computed from topology below.
	want := m.net.Unloaded(0, 1, mesh.CtrlFlits) + m.p.DirAccess +
		m.net.Unloaded(1, 2, mesh.CtrlFlits) + m.p.OwnerLookup +
		m.net.Unloaded(2, 0, mesh.DataFlits)
	if res.Unloaded != want {
		t.Fatalf("remote dirty unloaded = %d, want %d", res.Unloaded, want)
	}
	if res.StateBefore != Exclusive {
		t.Fatalf("state before = %v", res.StateBefore)
	}
	if m.StateOf(1) != Shared {
		t.Fatalf("after read of dirty block: state %v, want Shared", m.StateOf(1))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := machine(0, true)
	// Two readers -> Shared between nodes 1 and 2.
	m.Read(1, 7, 0)
	m.Read(2, 7, 1000) // forward from 1, downgrade to Shared
	if m.StateOf(7) != Shared {
		t.Fatalf("state = %v, want Shared", m.StateOf(7))
	}
	var invalidated []int
	m.Invalidate = func(node int, block uint64, at int64) {
		if block == 7 {
			invalidated = append(invalidated, node)
		}
	}
	res := m.Write(3, 7, 2000)
	if len(invalidated) != 2 {
		t.Fatalf("invalidated %v, want nodes 1 and 2", invalidated)
	}
	if m.StateOf(7) != Exclusive {
		t.Fatalf("after write: %v, want Exclusive", m.StateOf(7))
	}
	if res.StateBefore != Shared {
		t.Fatalf("state before write = %v", res.StateBefore)
	}
	if st := m.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidation count = %d", st.Invalidations)
	}
}

func TestWriteToExclusiveTransfersOwnership(t *testing.T) {
	m := machine(0, true)
	m.Write(1, 9, 0)
	var invalidated []int
	m.Invalidate = func(node int, block uint64, at int64) { invalidated = append(invalidated, node) }
	m.Write(2, 9, 1000)
	if len(invalidated) != 1 || invalidated[0] != 1 {
		t.Fatalf("invalidated %v, want [1]", invalidated)
	}
	if m.StateOf(9) != Exclusive {
		t.Fatal("ownership must transfer")
	}
}

func TestSilentEvictionWithoutHintsCausesForwardNack(t *testing.T) {
	m := machine(0, false)
	lost := false
	m.HasBlock = func(node int, block uint64) bool { return !lost }
	m.Read(1, 5, 0) // node 1 becomes E-clean owner
	// Node 1 silently drops the block (clean eviction, no hints).
	m.Evict(1, 5, false, 100)
	lost = true
	res := m.Read(2, 5, 1000)
	if st := m.Stats(); st.ForwardNacks != 1 {
		t.Fatalf("forward nacks = %d, want 1", st.ForwardNacks)
	}
	// The nacked forward costs two extra hops vs a clean remote read.
	direct := machine(0, false)
	base := direct.Read(2, 5, 0)
	if res.Unloaded <= base.Unloaded {
		t.Fatalf("stale-directory read (%d) must exceed precise read (%d)",
			res.Unloaded, base.Unloaded)
	}
}

func TestHintsKeepDirectoryPrecise(t *testing.T) {
	m := machine(0, true)
	m.HasBlock = func(node int, block uint64) bool {
		t.Fatal("with hints the directory must not need to probe")
		return false
	}
	m.Read(1, 5, 0)
	m.Evict(1, 5, false, 100) // hint clears ownership
	if m.StateOf(5) != Uncached {
		t.Fatalf("state after hinted eviction = %v", m.StateOf(5))
	}
	res := m.Read(2, 5, 1000)
	if res.StateBefore != Uncached {
		t.Fatalf("state before = %v, want Uncached", res.StateBefore)
	}
	if st := m.Stats(); st.Hints != 1 || st.ForwardNacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	m := machine(0, false) // even without hints, dirty data must come home
	m.Write(1, 5, 0)
	m.Evict(1, 5, true, 100)
	if m.StateOf(5) != Uncached {
		t.Fatalf("state after dirty eviction = %v", m.StateOf(5))
	}
	if st := m.Stats(); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d", st.Writebacks)
	}
}

func TestRereadAfterOwnSilentDrop(t *testing.T) {
	// Without hints, a node that silently dropped its E block and re-reads
	// it finds the directory pointing at itself: memory supplies the data
	// with no forward.
	m := machine(1, false)
	m.HasBlock = func(node int, block uint64) bool { return false }
	m.Read(0, 3, 0)
	m.Evict(0, 3, false, 10)
	res := m.Read(0, 3, 1000)
	if st := m.Stats(); st.Forwards != 0 {
		t.Fatalf("forwards = %d, want 0 (owner == requester)", st.Forwards)
	}
	if res.StateBefore != Exclusive {
		t.Fatalf("state before = %v, want stale Exclusive", res.StateBefore)
	}
}

func TestEvictUnknownBlockIsNoop(t *testing.T) {
	m := machine(0, true)
	m.Evict(3, 999, true, 0) // never seen: must not panic or count
	if st := m.Stats(); st.Writebacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoadedLatencyAtLeastUnloaded(t *testing.T) {
	m := machine(2, true)
	var prev int64
	for i := 0; i < 200; i++ {
		r := m.Read(i%16, uint64(i%32), prev)
		if r.Done-prev < 0 {
			t.Fatal("time went backwards")
		}
		lat := r.Done - prev
		if lat < r.Unloaded {
			t.Fatalf("loaded %d < unloaded %d", lat, r.Unloaded)
		}
		prev += 10
	}
}

func TestStateString(t *testing.T) {
	if Uncached.String() != "U" || Shared.String() != "S" || Exclusive.String() != "E" {
		t.Fatal("state strings")
	}
}

func TestUpgradeDoesNotInvalidateRequester(t *testing.T) {
	m := machine(0, true)
	m.Read(1, 7, 0)
	m.Read(2, 7, 1000) // Shared between 1 and 2
	var invalidated []int
	m.Invalidate = func(node int, block uint64, at int64) { invalidated = append(invalidated, node) }
	m.Write(1, 7, 2000) // upgrade by a current sharer
	if len(invalidated) != 1 || invalidated[0] != 2 {
		t.Fatalf("invalidated %v, want only node 2", invalidated)
	}
	if !m.OwnedBy(1, 7) {
		t.Fatal("upgrader must own the block")
	}
}

func TestOwnedBy(t *testing.T) {
	m := machine(0, true)
	if m.OwnedBy(1, 9) {
		t.Fatal("unknown block owned")
	}
	m.Write(1, 9, 0)
	if !m.OwnedBy(1, 9) || m.OwnedBy(2, 9) {
		t.Fatal("ownership wrong after write")
	}
	m.Read(2, 9, 1000) // downgrade to Shared
	if m.OwnedBy(1, 9) {
		t.Fatal("Shared block must not be owned")
	}
}

func TestMemoryBankContention(t *testing.T) {
	m := machine(0, true)
	// Two reads to blocks in the same bank (block % 4) at the same instant:
	// the second must queue behind the 60ns access.
	a := m.Read(0, 4, 0)
	b := m.Read(0, 8, 0)       // 8 % 4 == 0 == 4 % 4: same bank
	if b.Done < a.Done+60-20 { // allow for directory pipelining
		t.Fatalf("no bank queueing: %d then %d", a.Done, b.Done)
	}
	// Different banks at the same instant queue only at the directory.
	m2 := machine(0, true)
	c := m2.Read(0, 4, 0)
	d := m2.Read(0, 5, 0)
	if d.Done-c.Done >= 60 {
		t.Fatalf("different banks serialized by memory: %d then %d", c.Done, d.Done)
	}
}

func TestDirectorySerialization(t *testing.T) {
	m := machine(3, true)
	a := m.Read(0, 1, 0)
	b := m.Read(1, 2, 0) // different block, same home: dir occupancy queues
	_ = a
	if b.Done-b.Unloaded < 0 {
		t.Fatal("loaded below unloaded")
	}
	if got := b.Done - m.net.Unloaded(1, 3, mesh.CtrlFlits); got <= 0 {
		t.Fatal("second transaction unaffected by time")
	}
}

func TestSixteenSharersInvalidated(t *testing.T) {
	m := machine(0, true)
	for n := 1; n < 16; n++ {
		m.Read(n, 3, int64(n)*1000) // after the first E-read, all become sharers
	}
	count := 0
	m.Invalidate = func(node int, block uint64, at int64) { count++ }
	m.Write(0, 3, 100000)
	if count != 15 {
		t.Fatalf("invalidated %d sharers, want 15", count)
	}
	if m.StateOf(3) != Exclusive {
		t.Fatal("writer must end exclusive")
	}
}
