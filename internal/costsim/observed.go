package costsim

import (
	"fmt"

	"costcache/internal/cache"
	"costcache/internal/cost"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/trace"
)

// Window is one reporting interval of an observed run: the policy-under-test
// and the LRU shadow replayed the same references, so the cost columns are
// directly comparable per window, not just at end of run.
type Window struct {
	// EndRef is the 1-based index in the view at which the window closed.
	EndRef int64
	// Misses and CostPaid are the observed policy's L2 misses and aggregate
	// miss cost charged during the window.
	Misses   int64
	CostPaid int64
	// ShadowMisses and ShadowCost are the LRU shadow's numbers for the same
	// window.
	ShadowMisses int64
	ShadowCost   int64
}

// Saved is the cost the policy avoided relative to LRU in this window
// (negative when the policy paid more).
func (w Window) Saved() int64 { return w.ShadowCost - w.CostPaid }

// ObservedResult extends Result with the LRU shadow's counters and the
// per-window statistics.
type ObservedResult struct {
	Result
	// Shadow is the LRU shadow L2's counters over the full run.
	Shadow cache.Stats
	// Windows are the interval statistics (last window may be short).
	Windows []Window
}

// RunObserved replays view like Run, but with decision-level observability:
//
//   - o (when non-nil) is attached to the policy for the duration of the run
//     if the policy implements replacement.Observable, so every eviction,
//     reservation and automaton transition is emitted;
//   - an LRU shadow hierarchy replays the same references, giving the
//     "cost saved vs. LRU" attribution per window;
//   - every windowRefs view records a Window is cut (windowRefs <= 0
//     disables windowing);
//   - reg (when non-nil) receives live counters: costsim_refs plus
//     costsim_l2_misses, costsim_cost_paid and costsim_shadow_cost labeled
//     by policy, updated at every window boundary and at end of run.
//
// The final stats are identical to an un-observed Run over the same inputs:
// observation never changes a decision.
func RunObserved(view []trace.SampleRef, cfg Config, p replacement.Policy, src cost.Source,
	o replacement.Observer, windowRefs int, reg *obs.Registry) ObservedResult {
	cfg = cfg.orDefault()
	if o != nil {
		if ob, ok := p.(replacement.Observable); ok {
			ob.SetObserver(o)
			defer ob.SetObserver(nil)
		}
	}
	l1 := cache.New(cache.Config{
		Name: "L1", SizeBytes: cfg.L1Size, Ways: 1, BlockBytes: cfg.BlockBytes,
	})
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways, BlockBytes: cfg.BlockBytes,
		Policy: p, Cost: src,
	})
	h := cache.NewHierarchy(l1, l2)

	sl1 := cache.New(cache.Config{
		Name: "shadow-L1", SizeBytes: cfg.L1Size, Ways: 1, BlockBytes: cfg.BlockBytes,
	})
	sl2 := cache.New(cache.Config{
		Name: "shadow-L2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways, BlockBytes: cfg.BlockBytes,
		Policy: replacement.NewLRU(), Cost: src,
	})
	shadow := cache.NewHierarchy(sl1, sl2)

	var refsCtr, missCtr, paidCtr, shadowCtr *obs.Counter
	if reg != nil {
		refsCtr = reg.Counter("costsim_refs")
		missCtr = reg.Counter(obs.Name("costsim_l2_misses", "policy", p.Name()))
		paidCtr = reg.Counter(obs.Name("costsim_cost_paid", "policy", p.Name()))
		shadowCtr = reg.Counter(obs.Name("costsim_shadow_cost", "policy", p.Name()))
	}

	res := ObservedResult{Result: Result{Policy: p.Name()}}
	var prev, prevShadow cache.Stats
	cut := func(end int64) {
		cur, scur := l2.Stats(), sl2.Stats()
		res.Windows = append(res.Windows, Window{
			EndRef:       end,
			Misses:       cur.Misses - prev.Misses,
			CostPaid:     cur.AggCost - prev.AggCost,
			ShadowMisses: scur.Misses - prevShadow.Misses,
			ShadowCost:   scur.AggCost - prevShadow.AggCost,
		})
		if reg != nil {
			missCtr.Add(cur.Misses - prev.Misses)
			paidCtr.Add(cur.AggCost - prev.AggCost)
			shadowCtr.Add(scur.AggCost - prevShadow.AggCost)
		}
		prev, prevShadow = cur, scur
	}

	observer, _ := src.(cost.Observer)
	for i, r := range view {
		if r.Remote {
			h.Invalidate(r.Addr)
			shadow.Invalidate(r.Addr)
			res.Invalidations++
		} else {
			if observer != nil {
				observer.OnAccess(r.Addr/uint64(cfg.BlockBytes), r.Op == trace.Write)
			}
			h.Access(r.Addr, r.Op == trace.Write)
			shadow.Access(r.Addr, r.Op == trace.Write)
		}
		if refsCtr != nil {
			refsCtr.Inc()
		}
		if windowRefs > 0 && (i+1)%windowRefs == 0 {
			cut(int64(i + 1))
		}
	}
	if windowRefs > 0 && len(view)%windowRefs != 0 {
		cut(int64(len(view)))
	}
	if windowRefs <= 0 && reg != nil {
		cut(int64(len(view))) // sync the counters even without windowing
		res.Windows = nil
	}
	res.L1 = l1.Stats()
	res.L2 = l2.Stats()
	res.Shadow = sl2.Stats()
	return res
}

// WindowTable renders windows as the paper-style interval report: misses,
// cost paid, LRU shadow cost, and cost saved per window, with a totals row.
func WindowTable(title string, windows []Window) *tabulate.Table {
	t := tabulate.New(title, "refs", "misses", "cost paid", "LRU misses", "LRU cost", "cost saved", "saved %")
	var tot Window
	for _, w := range windows {
		t.AddF(fmt.Sprint(w.EndRef), w.Misses, w.CostPaid, w.ShadowMisses, w.ShadowCost,
			w.Saved(), savedPct(w))
		tot.Misses += w.Misses
		tot.CostPaid += w.CostPaid
		tot.ShadowMisses += w.ShadowMisses
		tot.ShadowCost += w.ShadowCost
	}
	t.AddF("total", tot.Misses, tot.CostPaid, tot.ShadowMisses, tot.ShadowCost,
		tot.Saved(), savedPct(tot))
	return t
}

func savedPct(w Window) float64 {
	if w.ShadowCost == 0 {
		return 0
	}
	return 100 * float64(w.Saved()) / float64(w.ShadowCost)
}
