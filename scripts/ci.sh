#!/bin/sh
# CI gate: formatting, vet, build, tests, the full suite under the race
# detector, and an observability smoke run whose artifacts (run manifest,
# span JSONL, Chrome trace) are validated structurally and diffed against
# the archived baseline. Run from the repository root.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Observability smoke: a quick deterministic numasim run producing every
# artifact kind. cmd/report -check fails the gate on malformed output; the
# manifest diff against the archived baseline warns on metric drift (the
# simulator is deterministic, so drift means behaviour changed) but only
# fails on malformed manifests (exit 2).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT

go run ./cmd/numasim -quick -bench Barnes -policy DCL \
    -span.trace "$smoke/trace.json" -span.jsonl "$smoke/spans.jsonl" \
    -manifest "$smoke/manifest.json" > "$smoke/stdout.txt"

go run ./cmd/report -check \
    "$smoke/manifest.json" "$smoke/spans.jsonl" "$smoke/trace.json"

baseline=results/MANIFEST_numasim_quick.json
if [ -f "$baseline" ]; then
    go run ./cmd/report -tol 0.5 "$baseline" "$smoke/manifest.json"
else
    echo "ci: $baseline missing; skipping manifest diff" >&2
fi

echo "ci: ok"
