package engine

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
)

// TestAnalyzeHotShard pins the detector: a shard carrying well over the
// uniform share of window traffic is flagged; balanced shards are not.
func TestAnalyzeHotShard(t *testing.T) {
	prev := []ShardStats{{Shard: 0, Hits: 100}, {Shard: 1, Hits: 100},
		{Shard: 2, Hits: 100}, {Shard: 3, Hits: 100}}
	cur := []ShardStats{{Shard: 0, Hits: 1000, LockWaitNs: 500}, {Shard: 1, Hits: 150},
		{Shard: 2, Hits: 150}, {Shard: 3, Hits: 150}}
	a := Analyze(cur, prev, 1e9, 0)
	if a.Ops != 1050 {
		t.Fatalf("window ops = %d, want 1050", a.Ops)
	}
	if a.HotShareFactor != DefaultHotShareFactor {
		t.Fatalf("hot factor = %g, want default %g", a.HotShareFactor, DefaultHotShareFactor)
	}
	if len(a.Hot) != 1 || a.Hot[0] != 0 {
		t.Fatalf("hot = %v, want [0]", a.Hot)
	}
	if !a.Shards[0].Hot || a.Shards[1].Hot {
		t.Fatalf("hot flags wrong: %+v", a.Shards)
	}
	if a.Shards[0].LockWaitNs != 500 {
		t.Fatalf("lock-wait delta = %d, want 500", a.Shards[0].LockWaitNs)
	}

	// A custom threshold moves the boundary: at 10× the uniform share the
	// same skew is no longer flagged; well under the skew, every active
	// shard above its share would be.
	if a := Analyze(cur, prev, 1e9, 10); len(a.Hot) != 0 {
		t.Fatalf("10x threshold still flagged shards: %v", a.Hot)
	}
	if a := Analyze(cur, prev, 1e9, 1.5); len(a.Hot) != 1 || a.Hot[0] != 0 {
		t.Fatalf("1.5x threshold hot = %v, want [0]", a.Hot)
	}

	// Balanced traffic, nil prev (window = since start): nothing is hot.
	a = Analyze(prev, nil, 0, 0)
	if len(a.Hot) != 0 || a.Ops != 400 {
		t.Fatalf("balanced window flagged hot shards: %+v", a)
	}
}

// TestDebugHandler drives a traced engine and scrapes /debug/engine: the
// payload must carry cumulative stats, per-shard windows, hot-shard info,
// attribution with exemplars and the keyspace estimate — and a second
// scrape must report a rolling (smaller) window.
func TestDebugHandler(t *testing.T) {
	tr := reqspan.New(reqspan.Config{AttrRate: 1}, nil, nil)
	e := New(Config{Shards: 4, Sets: 32, Ways: 2, Policy: lruFactory, Tracer: tr})
	h := DebugHandler(e, tr, 0)

	for i := 0; i < 300; i++ {
		e.Set(77, i, 2) // one hot key → one hot shard
	}
	for k := uint64(0); k < 20; k++ {
		e.Get(k)
	}

	scrape := func() debugPayload {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/engine", nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var p debugPayload
		if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
			t.Fatalf("payload not JSON: %v\n%s", err, rec.Body.String())
		}
		return p
	}

	p := scrape()
	if p.Stats.Hits+p.Stats.Misses != 320 {
		t.Fatalf("stats = %+v, want 320 lookups", p.Stats)
	}
	if len(p.Window.Shards) != 4 || len(p.Cumulative) != 4 {
		t.Fatalf("per-shard arrays: window %d cumulative %d, want 4/4", len(p.Window.Shards), len(p.Cumulative))
	}
	if len(p.Window.Hot) == 0 {
		t.Fatalf("hot-key traffic not flagged: %+v", p.Window)
	}
	if p.Attribution == nil || p.Attribution.Spans != 320 {
		t.Fatalf("attribution missing or wrong: %+v", p.Attribution)
	}
	if p.Attribution.Latency.Exemplars == nil {
		t.Fatal("attribution latency lacks exemplar slots")
	}
	if p.Keyspace == nil || p.Keyspace.Top[0].Key != 77 {
		t.Fatalf("keyspace estimate missing key 77: %+v", p.Keyspace)
	}

	// Rolling window: nothing happened since the first scrape.
	if p2 := scrape(); p2.Window.Ops != 0 || p2.Stats.Hits != p.Stats.Hits {
		t.Fatalf("second scrape window not rolling: %+v", p2.Window)
	}

	// A tracer-less handler omits the optional sections.
	h2 := DebugHandler(New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory}), nil, 0)
	rec := httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/engine", nil))
	var p3 debugPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p3); err != nil {
		t.Fatal(err)
	}
	if p3.Attribution != nil || p3.Keyspace != nil {
		t.Fatal("untraced payload carries attribution/keyspace")
	}
}

// TestShardStatsDepth pins the coalesce-depth high-water mark.
func TestShardStatsDepth(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	gate := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		k := uint64(i)
		go func() {
			e.GetOrLoad(k, func(uint64) (any, replacement.Cost, error) {
				<-gate
				return "v", 1, nil
			})
			done <- struct{}{}
		}()
	}
	for e.ShardStats()[0].InFlight != 3 {
	}
	close(gate)
	for i := 0; i < 3; i++ {
		<-done
	}
	st := e.ShardStats()[0]
	if st.InFlight != 0 || st.MaxInFlight != 3 {
		t.Fatalf("in-flight %d max %d, want 0/3", st.InFlight, st.MaxInFlight)
	}
}
