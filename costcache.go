// Package costcache is a from-scratch reproduction of "Cost-Sensitive Cache
// Replacement Algorithms" (Jaeheon Jeong and Michel Dubois, HPCA 2003): LRU
// extensions that minimize the aggregate miss COST — latency, energy,
// bandwidth, or any non-negative per-miss quantity — instead of the miss
// count.
//
// The package is a facade over the implementation packages:
//
//   - Replacement policies: NewLRU, NewGD (GreedyDual), NewBCL, NewDCL,
//     NewACL, plus ETD tag-aliased variants (Section 2 of the paper).
//   - A set-associative cache and two-level hierarchy (NewCache,
//     NewHierarchy) that the policies plug into.
//   - Cost sources: static mappings and the last-latency predictor
//     (Sections 3 and 4.1).
//   - The trace-driven cost simulator (SimulateTrace) and its sweep drivers,
//     the synthetic SPLASH-2-like workload generators, and the
//     execution-driven CC-NUMA simulator (see internal/costsim,
//     internal/workload and internal/numasim; their experiment drivers
//     regenerate every table and figure in the paper via cmd/paper).
//   - A concurrent sharded serving engine (NewEngine) with singleflight
//     miss coalescing and a live LRU shadow, plus a load harness (RunLoad)
//     — the policies on a real request path (docs/ENGINE.md,
//     examples/serving).
//
// Quick start:
//
//	tr := costcache.Workload("Raytrace").Generate()
//	view := tr.SampleView(0)
//	src := costcache.RandomCosts(1, 8, 0.2, 42) // low 1, high 8, HAF 0.2
//	lru := costcache.SimulateTrace(view, costcache.NewLRU(), src)
//	dcl := costcache.SimulateTrace(view, costcache.NewDCL(), src)
//	fmt.Printf("savings: %.1f%%\n",
//		100*costcache.RelativeSavings(lru.L2.AggCost, dcl.L2.AggCost))
package costcache

import (
	"costcache/internal/cache"
	"costcache/internal/cost"
	"costcache/internal/costsim"
	"costcache/internal/engine"
	"costcache/internal/loadgen"
	"costcache/internal/numasim"
	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// Core type aliases, so callers need not import the internal packages.
type (
	// Policy is a cache replacement algorithm.
	Policy = replacement.Policy
	// Cost is a non-negative per-miss cost.
	Cost = replacement.Cost
	// CostSource predicts the next-miss cost of a block.
	CostSource = cost.Source
	// Cache is a single set-associative cache level.
	Cache = cache.Cache
	// CacheConfig describes one cache level.
	CacheConfig = cache.Config
	// Hierarchy is the paper's L1+L2 structure with inclusion.
	Hierarchy = cache.Hierarchy
	// Trace is a multiprocessor reference trace.
	Trace = trace.Trace
	// SampleRef is one entry of a per-processor trace view.
	SampleRef = trace.SampleRef
	// Generator produces synthetic multiprocessor workloads.
	Generator = workload.Generator
	// SimResult is the outcome of a trace-driven simulation.
	SimResult = costsim.Result
)

// NewLRU returns the least-recently-used baseline policy.
func NewLRU() Policy { return replacement.NewLRU() }

// NewGD returns GreedyDual adapted to set-associative caches (Section 2.1).
func NewGD() Policy { return replacement.NewGD() }

// NewBCL returns the Basic Cost-sensitive LRU policy (Section 2.3).
func NewBCL() Policy { return replacement.NewBCL() }

// NewDCL returns the Dynamic Cost-sensitive LRU policy with its Extended
// Tag Directory (Section 2.4). etdTagBits > 0 enables tag aliasing with
// that many stored tag bits; 0 keeps full tags.
func NewDCL(etdTagBits int) Policy {
	return replacement.NewDCLWith(replacement.Options{TagBits: etdTagBits})
}

// NewACL returns the Adaptive Cost-sensitive LRU policy (Section 2.5).
// etdTagBits works as in NewDCL.
func NewACL(etdTagBits int) Policy {
	return replacement.NewACLWith(replacement.Options{TagBits: etdTagBits})
}

// NewPLRU returns tree pseudo-LRU (requires power-of-two associativity).
func NewPLRU() Policy { return replacement.NewPLRU() }

// NewCSPLRU returns the cost-sensitive pseudo-LRU extension the paper's
// conclusion sketches: blockframe reservation and cost depreciation on a
// PLRU base. factor <= 0 selects the paper's 2x depreciation.
func NewCSPLRU(factor int) Policy { return replacement.NewCSPLRU(factor) }

// NewLFU returns the least-frequently-used baseline.
func NewLFU() Policy { return replacement.NewLFU() }

// NewSLRU returns the segmented-LRU baseline.
func NewSLRU() Policy { return replacement.NewSLRU() }

// PolicyByName builds a policy factory from a table name (LRU, GD, BCL,
// DCL, ACL, DCL-a4, ACL-a4, PLRU, CS-PLRU, LFU, SLRU, Random).
func PolicyByName(name string) (PolicyFactory, bool) { return replacement.ByName(name) }

// NewCache builds a cache level.
func NewCache(cfg CacheConfig) *Cache { return cache.New(cfg) }

// NewHierarchy wires an L1 in front of an L2 with inclusion.
func NewHierarchy(l1, l2 *Cache) *Hierarchy { return cache.NewHierarchy(l1, l2) }

// UniformCosts charges the same cost for every miss (every policy then
// behaves exactly like LRU).
func UniformCosts(c Cost) CostSource { return cost.Uniform(c) }

// RandomCosts assigns each block low or high cost by a seeded hash of its
// address; a block is high-cost with probability frac (Section 3.2).
func RandomCosts(low, high Cost, frac float64, seed uint64) CostSource {
	return cost.Random{Low: low, High: high, Fraction: frac, Seed: seed}
}

// FirstTouchCosts charges low for blocks homed at proc and high for remote
// blocks (Section 3.3).
func FirstTouchCosts(home func(block uint64) int16, proc int16, low, high Cost) CostSource {
	return cost.FirstTouch{Home: home, Proc: proc, Low: low, High: high}
}

// CostFunc adapts a function to a CostSource.
func CostFunc(f func(block uint64) Cost) CostSource { return cost.Func(f) }

// LastLatencyPredictor returns the Section 4.1 predictor: the next miss
// cost of a block is its last observed miss latency (def until observed).
func LastLatencyPredictor(def Cost) *cost.LastLatency { return cost.NewLastLatency(def) }

// NextOpCosts returns the paper's single-ILP-processor criticality idea
// (Section 7): a block's next miss is charged loadCost if its next access
// is predicted to be a load (pipeline-stalling) and storeCost if a store
// (buffered). The prediction is the type of the block's last access; the
// trace-driven simulator feeds the predictor automatically.
func NextOpCosts(loadCost, storeCost Cost) *cost.NextOp {
	return cost.NewNextOp(loadCost, storeCost)
}

// MigratingCosts returns a first-touch mapping with dynamic page migration
// (Section 7's "memory mapping may vary with time"): a remote block
// referenced threshold times migrates to local memory and subsequently
// costs low.
func MigratingCosts(home func(block uint64) int16, proc int16, low, high Cost, threshold int) *cost.Migrating {
	return cost.NewMigrating(home, proc, low, high, threshold)
}

// Workload returns a default-configured synthetic benchmark by Table 1 name
// (Barnes, LU, Ocean or Raytrace); it panics on unknown names, since those
// are programming errors.
func Workload(name string) Generator {
	g, ok := workload.ByName(name)
	if !ok {
		panic("costcache: unknown workload " + name)
	}
	return g
}

// FirstTouchHome derives a first-touch home function from a trace.
func FirstTouchHome(tr *Trace, blockBytes int) func(block uint64) int16 {
	return workload.HomeFunc(workload.FirstTouchHomes(tr, blockBytes), 0)
}

// SimulateTrace replays a sample-processor view through the paper's basic
// hierarchy (4 KB direct-mapped L1, 16 KB 4-way L2, 64-byte blocks) with
// the policy and cost source applied at the L2.
func SimulateTrace(view []SampleRef, p Policy, src CostSource) SimResult {
	return costsim.Run(view, costsim.Default(), p, src)
}

// RelativeSavings is the paper's metric: (lruCost-algCost)/lruCost.
func RelativeSavings(lruCost, algCost int64) float64 {
	return costsim.RelativeSavings(lruCost, algCost)
}

// PolicyFactory builds fresh policy instances; simulators that instantiate
// one cache per node take factories instead of policies.
type PolicyFactory = replacement.Factory

// OptEvent is one event of a single-set reference stream for the offline
// oracles.
type OptEvent = replacement.OptEvent

// OptimalMisses returns Belady's offline-optimal miss count for a
// single-set event stream (invalidation-aware).
func OptimalMisses(events []OptEvent, ways int) int64 {
	return replacement.OptimalMisses(events, ways)
}

// OptimalAggregateCost returns the offline-optimal aggregate miss cost
// (CSOPT, after Jeong & Dubois SPAA 1999) for a single-set event stream
// under static per-block costs. Exponential in principle; use on small
// traces for calibration.
func OptimalAggregateCost(events []OptEvent, ways int, costOf func(block uint64) Cost, allowBypass bool) int64 {
	return replacement.OptimalAggregateCost(events, ways, costOf, allowBypass)
}

// Engine is the concurrent sharded cost-sensitive cache: any Policy served
// thread-safely behind per-shard mutexes, with singleflight miss coalescing
// and an optional live LRU shadow reporting cost savings (docs/ENGINE.md).
type Engine = engine.Engine

// EngineConfig configures an Engine: global geometry (Sets x Ways), the
// power-of-two shard count, the policy factory, an optional obs registry
// and the LRU shadow switch.
type EngineConfig = engine.Config

// EngineStats is a point-in-time roll-up of an Engine's counters.
type EngineStats = engine.Stats

// Loader fetches a missing value and reports its miss cost; see
// Engine.GetOrLoad.
type Loader = engine.Loader

// NewEngine builds a concurrent sharded engine. It panics on invalid
// geometry, like NewCache.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// LoadgenConfig configures a load-generation run against an Engine:
// closed- or open-loop discipline, worker count, zipfian or workload-replay
// key streams, and the simulated backend's cost model.
type LoadgenConfig = loadgen.Config

// LoadgenResult carries a load run's throughput, latency percentiles and
// the engine counter deltas it produced.
type LoadgenResult = loadgen.Result

// Load-generation modes for LoadgenConfig.Mode.
const (
	// ClosedLoop issues each worker's next request when the previous one
	// completes (measures capacity; deterministic with one worker).
	ClosedLoop = loadgen.Closed
	// OpenLoop issues requests on a fixed arrival schedule and measures
	// latency from the scheduled arrival, queueing included.
	OpenLoop = loadgen.Open
)

// RunLoad drives an Engine with the configured load. stopped is polled
// between requests and may be nil; cmd/cachebench passes the SIGINT handle
// so runs stop cleanly.
func RunLoad(e *Engine, cfg LoadgenConfig, stopped func() bool) (LoadgenResult, error) {
	return loadgen.Run(e, cfg, stopped)
}

// NUMAResult is the outcome of an execution-driven CC-NUMA simulation.
type NUMAResult = numasim.Result

// SimulateNUMA runs the Section 4 execution-driven simulation: the named
// benchmark on the paper's 16-node CC-NUMA machine (Table 4) with the given
// L2 replacement policy and clock (500 or 1000 MHz). Miss costs are
// predicted per block from the last measured miss latency.
func SimulateNUMA(bench string, policy PolicyFactory, clockMHz int) NUMAResult {
	g := Workload(bench)
	prog, _ := workload.ProgramOf(g)
	cfg := numasim.DefaultConfig(policy)
	cfg.ClockMHz = clockMHz
	return numasim.Run(prog, cfg)
}
