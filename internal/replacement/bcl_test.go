package replacement

import (
	"reflect"
	"testing"
)

// The canonical BCL scenario, worked by hand from Figure 1 of the paper:
// a 4-way set holding three low-cost blocks and one high-cost block in the
// LRU position. BCL reserves the high-cost LRU block, sacrificing low-cost
// blocks while depreciating Acost by twice each victim's cost, and gives the
// reservation up once Acost is exhausted.
func TestBCLReservationAndDepreciation(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8}) // block D=3 costs 8, others 1
	p := NewBCL()
	c := newTestCache(t, 1, 4, p, costs)

	// Fill so that D ends up LRU: access D,C,B,A -> stack A,B,C,D.
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	if got := p.Acost(0); got != 8 {
		t.Fatalf("Acost after fills = %d, want 8", got)
	}

	// Five more cold misses. The first four sacrifice the block closest to
	// the LRU position with cost < Acost (C, B, A, then E), each knocking
	// Acost down by 2; the fifth finds Acost exhausted and evicts D itself.
	wantAcost := []Cost{6, 4, 2, 0}
	for i, b := range []uint64{4, 5, 6, 7} {
		c.access(b)
		if got := p.Acost(0); got != wantAcost[i] {
			t.Fatalf("after miss %d: Acost = %d, want %d", i, got, wantAcost[i])
		}
	}
	c.access(8)
	want := []uint64{2, 1, 0, 4, 3} // C, B, A, E, then the reserved D
	if !reflect.DeepEqual(c.evictions, want) {
		t.Fatalf("evictions = %v, want %v", c.evictions, want)
	}
	// A new block (F=5) entered the LRU position: Acost reloaded to its cost.
	if got := p.Acost(0); got != 1 {
		t.Fatalf("Acost after D evicted = %d, want 1", got)
	}
	inv, succ := p.Reservations()
	if inv != 1 || succ != 0 {
		t.Fatalf("reservations = (%d,%d), want (1,0)", inv, succ)
	}
}

func TestBCLReservationSuccess(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewBCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // reserves D, sacrifices C
	if !c.access(3) {
		t.Fatal("reserved block D must still be cached")
	}
	if _, succ := p.Reservations(); succ != 1 {
		t.Fatalf("succeeded = %d, want 1", succ)
	}
	// D was promoted to MRU; the new LRU occupant is B(1), Acost reloaded.
	if got := p.Acost(0); got != 1 {
		t.Fatalf("Acost = %d, want 1", got)
	}
}

func TestBCLNoReservationWhenLRUIsCheap(t *testing.T) {
	costs := costTable(map[uint64]Cost{0: 8}) // high-cost block is MRU, not LRU
	c := newTestCache(t, 1, 4, NewBCL(), costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	// LRU is D=3 with cost 1; no cached block has cost < 1, so plain LRU.
	c.access(4)
	c.access(5)
	if !reflect.DeepEqual(c.evictions, []uint64{3, 2}) {
		t.Fatalf("evictions = %v, want [3 2]", c.evictions)
	}
}

func TestBCLEqualCostsDegenerateToLRU(t *testing.T) {
	// With c[i] == Acost the strict < never fires: exact LRU.
	c := newTestCache(t, 1, 4, NewBCL(), unitCost)
	for b := uint64(0); b < 12; b++ {
		c.access(b)
	}
	want := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(c.evictions, want) {
		t.Fatalf("evictions = %v, want %v", c.evictions, want)
	}
}

func TestBCLInvalidationOfReservedBlock(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewBCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4)     // reserve D, sacrificing C
	c.invalidate(3) // coherence kills the reserved block
	c.access(5)     // fills the freed way: no further eviction
	if !reflect.DeepEqual(c.evictions, []uint64{2}) {
		t.Fatalf("evictions = %v, want [2]", c.evictions)
	}
	// New LRU occupant is B(1): Acost reloaded to 1.
	if got := p.Acost(0); got != 1 {
		t.Fatalf("Acost = %d, want 1", got)
	}
}

func TestBCLInfiniteRatio(t *testing.T) {
	// Infinite cost ratio: low cost 0, high cost 1. Depreciation subtracts
	// zero, so a high-cost LRU block is reserved as long as any zero-cost
	// block remains.
	costs := func(b uint64) Cost {
		if b == 3 {
			return 1
		}
		return 0
	}
	p := NewBCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	for b := uint64(4); b < 20; b++ {
		c.access(b)
	}
	if got := p.Acost(0); got != 1 {
		t.Fatalf("Acost = %d, want 1 (zero-cost victims must not depreciate)", got)
	}
	if !c.access(3) {
		t.Fatal("high-cost block must survive an unbounded run of zero-cost misses")
	}
	for _, e := range c.evictions {
		if e == 3 {
			t.Fatal("block 3 must never be evicted")
		}
	}
}
