package mesh

import (
	"testing"

	"costcache/internal/fault"
)

func TestOutageNacksAndDelays(t *testing.T) {
	p := &fault.Plan{
		Links: []fault.LinkFault{{Node: 0, Dir: "east", Outage: true,
			Window: fault.Window{EndNs: 2000}}},
		Retry: fault.Retry{BaseNs: 50, CapNs: 3200},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(Default())
	m.SetFaults(fault.NewInjector(p, Default().Dim, 4))

	unfaulted := New(Default()).Send(0, 1, CtrlFlits, 0)
	got := m.Send(0, 1, CtrlFlits, 0)
	if got <= unfaulted {
		t.Fatalf("outage send arrived at %d, unfaulted at %d: no delay", got, unfaulted)
	}
	// The hop itself begins only after the outage clears at t=2000.
	if got < 2000 {
		t.Fatalf("arrived at %d, inside the outage window", got)
	}

	// A message after the window pays nothing (occupancy from the first send
	// aside, on a fresh mesh).
	m2 := New(Default())
	m2.SetFaults(fault.NewInjector(p, Default().Dim, 4))
	if late := m2.Send(0, 1, CtrlFlits, 5000); late-5000 != unfaulted {
		t.Fatalf("post-outage latency %d, want unfaulted %d", late-5000, unfaulted)
	}

	// The return path 1 -> 0 uses node 1's west link, not node 0's east link.
	m3 := New(Default())
	m3.SetFaults(fault.NewInjector(p, Default().Dim, 4))
	if back := m3.Send(1, 0, CtrlFlits, 0); back != unfaulted {
		t.Fatalf("reverse direction delayed: %d, want %d", back, unfaulted)
	}
}

func TestOutageRetryCountersAccumulate(t *testing.T) {
	p := &fault.Plan{
		Links: []fault.LinkFault{{Node: 0, Dir: "east", Outage: true,
			Window: fault.Window{EndNs: 10_000}}},
	}
	in := fault.NewInjector(p, Default().Dim, 4)
	m := New(Default())
	m.SetFaults(in)
	m.Send(0, 1, DataFlits, 0)
	st := in.Stats()
	if st.Nacks == 0 || st.Retries != st.Nacks || st.BackoffNs == 0 {
		t.Fatalf("stats = %+v, want NACKs with matching retries and backoff", st)
	}
}

func TestSlowdownInflatesLatency(t *testing.T) {
	p := &fault.Plan{
		Links: []fault.LinkFault{{Node: 0, Dir: "east", Slowdown: 4,
			Window: fault.Window{EndNs: 1 << 30}}},
	}
	in := fault.NewInjector(p, Default().Dim, 4)
	m := New(Default())
	m.SetFaults(in)

	// One hop east: NIRemote + 4*(HopDelay + 9*FlitDelay) = 102 + 4*62.
	if got := m.Send(0, 1, DataFlits, 0); got != 102+4*62 {
		t.Fatalf("slowed send arrived at %d, want %d", got, 102+4*62)
	}
	st := in.Stats()
	if st.SlowedHops != 1 || st.SlowNs != 3*62 {
		t.Fatalf("stats = %+v, want 1 slowed hop / %d extra ns", st, 3*62)
	}
	// The slowed occupancy also holds the link longer for the next message:
	// it queues until the first train's inflated occupancy clears at 350,
	// then pays its own inflated occupancy.
	if second := m.Send(0, 1, DataFlits, 0); second != 350+4*62 {
		t.Fatalf("second send arrived at %d, want %d", second, 350+4*62)
	}
}

func TestEmptyPlanInjectorBitIdentical(t *testing.T) {
	bare := New(Default())
	faulted := New(Default())
	faulted.SetFaults(fault.NewInjector(&fault.Plan{}, Default().Dim, 4))
	pairs := [][2]int{{0, 5}, {2, 14}, {7, 7}, {15, 0}, {3, 12}}
	for i, pair := range pairs {
		at := int64(i * 37)
		a := bare.Send(pair[0], pair[1], DataFlits, at)
		b := faulted.Send(pair[0], pair[1], DataFlits, at)
		if a != b {
			t.Fatalf("Send(%v) differs with an empty plan: %d vs %d", pair, a, b)
		}
	}
	am, af, aq := bare.Stats()
	bm, bf, bq := faulted.Stats()
	if am != bm || af != bf || aq != bq {
		t.Fatal("stats differ with an empty plan")
	}
}

func TestWatchdogTicksFromRetryLoop(t *testing.T) {
	p := &fault.Plan{
		Links: []fault.LinkFault{{Node: 0, Dir: "east", Outage: true,
			Window: fault.Window{EndNs: 5000}}},
	}
	in := fault.NewInjector(p, Default().Dim, 4)
	in.Watchdog = &fault.Watchdog{
		Limit:   1 << 30,
		OnStall: func(d fault.Diagnostic) { t.Fatalf("fired: %+v", d) },
	}
	// The retry loop ticks the watchdog with advancing backoff times, so a
	// healthy (finite) outage never trips it.
	m := New(Default())
	m.SetFaults(in)
	m.Send(0, 1, CtrlFlits, 0)
	if st := in.Stats(); st.Nacks == 0 {
		t.Fatal("no NACKs: the retry loop never ran")
	}
}
