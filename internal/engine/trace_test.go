package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"costcache/internal/obs"
	"costcache/internal/obs/reqspan"
	"costcache/internal/obs/span"
	"costcache/internal/replacement"
)

// TestTracedReconciliation runs a traced engine at sampling rate 1 and
// checks the span-side outcome counts agree exactly with the engine's own
// counters: hits ↔ hit spans, misses ↔ miss + error spans (the engine
// counts a failed leader load as a miss), coalesced ↔ coalesced spans —
// and that stage attribution tiles total latency exactly once quiesced.
func TestTracedReconciliation(t *testing.T) {
	tr := reqspan.New(reqspan.Config{AttrRate: 1}, nil, nil)
	e := New(Config{Shards: 2, Sets: 16, Ways: 2, Policy: lruFactory, Shadow: true, Tracer: tr})

	for k := uint64(0); k < 40; k++ {
		e.Set(k, k, replacement.Cost(1+k%5)) // misses, some evicting
	}
	for k := uint64(0); k < 40; k++ {
		e.Get(k) // mixed hits and misses after evictions
	}
	if _, err := e.GetOrLoad(1000, constLoader("v", 3)); err != nil { // leader miss
		t.Fatal(err)
	}
	if _, err := e.GetOrLoad(1000, constLoader("v", 3)); err != nil { // hit
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := e.GetOrLoad(1001, func(uint64) (any, replacement.Cost, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) { // failed leader: engine miss, span error
		t.Fatalf("err = %v, want boom", err)
	}

	// Coalesced waiters: gate one slow load, pile waiters on it.
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.GetOrLoad(2000, func(uint64) (any, replacement.Cost, error) {
				<-gate
				return "slow", 1, nil
			})
		}()
	}
	deadline := 0
	for e.Stats().Coalesced != waiters-1 {
		if deadline++; deadline > 5_000_000 {
			t.Fatal("coalesced waiters never queued")
		}
	}
	close(gate)
	wg.Wait()

	st := e.Stats()
	a := tr.Attribution()
	total := st.Hits + st.Misses + st.Coalesced
	if int64(tr.Requests()) != total || a.Spans != total {
		t.Fatalf("requests %d spans %d, want %d (every request sampled)",
			tr.Requests(), a.Spans, total)
	}
	if a.Outcomes[reqspan.OutcomeHit] != st.Hits {
		t.Errorf("hit spans = %d, engine hits = %d", a.Outcomes[reqspan.OutcomeHit], st.Hits)
	}
	if got := a.Outcomes[reqspan.OutcomeMiss] + a.Outcomes[reqspan.OutcomeError]; got != st.Misses {
		t.Errorf("miss+error spans = %d, engine misses = %d", got, st.Misses)
	}
	if a.Outcomes[reqspan.OutcomeCoalesced] != st.Coalesced {
		t.Errorf("coalesced spans = %d, engine coalesced = %d",
			a.Outcomes[reqspan.OutcomeCoalesced], st.Coalesced)
	}
	if a.Outcomes[reqspan.OutcomeError] != 1 {
		t.Errorf("error spans = %d, want 1", a.Outcomes[reqspan.OutcomeError])
	}
	if got := a.StageSumNs() + a.OtherNs; got != a.TotalNs {
		t.Errorf("stage sum + other = %d, total = %d (tiling broken)", got, a.TotalNs)
	}
	// Shadow replay ran inside spans: the shadow stage must have segments.
	if a.Stages[reqspan.StageShadow].Count == 0 || a.Stages[reqspan.StageLoad].Count == 0 {
		t.Errorf("stage counts missing shadow/load segments: %+v", a.Stages)
	}
}

// TestTracedEmission pins the engine→sink wiring: emitted spans land in the
// JSONL stream with real shard ids and in a valid Chrome trace array.
func TestTracedEmission(t *testing.T) {
	var jb, cb bytes.Buffer
	tr := reqspan.New(reqspan.Config{AttrRate: 1, EmitRate: 1},
		span.NewLineSink(&jb), span.NewChromeSink(&cb))
	e := New(Config{Shards: 4, Sets: 16, Ways: 2, Policy: lruFactory, Tracer: tr})
	for k := uint64(0); k < 32; k++ {
		if _, err := e.GetOrLoad(k, constLoader(k, 2)); err != nil {
			t.Fatal(err)
		}
		e.Get(k)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if err := span.NewChromeSink(nil).Close(); err != nil { // exercise nil close path
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if len(lines) != 64 {
		t.Fatalf("emitted %d spans, want 64", len(lines))
	}
	shards := map[int]bool{}
	for _, line := range lines {
		var rec struct {
			Kind  string `json:"kind"`
			Shard int    `json:"shard"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span line: %v\n%s", err, line)
		}
		if rec.Kind != "req" {
			t.Fatalf("kind = %q, want req", rec.Kind)
		}
		shards[rec.Shard] = true
	}
	if len(shards) < 2 {
		t.Fatalf("all spans on %v — shard ids not threaded", shards)
	}
}

// TestEngineUnsampledAllocs pins the tentpole's zero-alloc contract: with a
// tracer attached but the request unsampled (and with no tracer at all), a
// Get hit performs zero heap allocations.
func TestEngineUnsampledAllocs(t *testing.T) {
	build := func(tr *reqspan.Tracer) *Engine {
		e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory, Tracer: tr})
		e.Set(1, "v", 1)
		return e
	}
	// 1e-9 rate → stride 1e9: nothing in this test is ever sampled.
	for name, e := range map[string]*Engine{
		"nil-tracer":      build(nil),
		"unsampled-trace": build(reqspan.New(reqspan.Config{AttrRate: 1e-9}, nil, nil)),
	} {
		if allocs := testing.AllocsPerRun(1000, func() {
			if _, ok := e.Get(1); !ok {
				t.Fatal("lost the warm entry")
			}
		}); allocs != 0 {
			t.Errorf("%s: Get hit allocates %.1f per op, want 0", name, allocs)
		}
	}
}

// TestDecisionTracerBinding pins Config.Decisions: every shard whose policy
// implements replacement.Observable streams its decisions into the tracer
// stamped with the shard it ran on, under the policy's registry name — the
// two tags report -explain slices kinds by when it joins two runs.
func TestDecisionTracerBinding(t *testing.T) {
	dt := obs.NewTracer(1 << 12)
	e := New(Config{Shards: 4, Sets: 16, Ways: 2,
		Policy:    func() replacement.Policy { return replacement.NewBCL() },
		Decisions: dt})
	for k := uint64(0); k < 200; k++ {
		e.Set(k, k, replacement.Cost(1+k%7)) // overfill: evictions everywhere
	}
	if dt.Count("BCL", replacement.EvEvict) == 0 {
		t.Fatal("no evict decisions recorded through Config.Decisions")
	}
	shards := map[int]bool{}
	for _, r := range dt.Events() {
		if r.Policy != "BCL" {
			t.Fatalf("event policy %q, want BCL", r.Policy)
		}
		if r.Shard < 0 || r.Shard > 3 {
			t.Fatalf("event shard %d outside the engine's [0,3]", r.Shard)
		}
		shards[r.Shard] = true
	}
	if len(shards) < 2 {
		t.Fatalf("decisions all on shards %v — shard binding not threaded", shards)
	}

	// Each shard binds under its own policy instance's name: an LRU engine
	// records under "LRU", not the first engine's label.
	lt := obs.NewTracer(1 << 10)
	plain := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory, Decisions: lt})
	for k := uint64(0); k < 64; k++ {
		plain.Set(k, k, 1)
	}
	if lt.Count("LRU", replacement.EvEvict) == 0 || lt.Count("BCL", replacement.EvEvict) != 0 {
		t.Fatalf("LRU decisions mislabeled: LRU=%d BCL=%d",
			lt.Count("LRU", replacement.EvEvict), lt.Count("BCL", replacement.EvEvict))
	}
}

// TestTracedPanicFinishes: a loader panic must still finish the leader's
// and waiters' spans (as errors) before propagating.
func TestTracedPanicFinishes(t *testing.T) {
	tr := reqspan.New(reqspan.Config{AttrRate: 1}, nil, nil)
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory, Tracer: tr})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		e.GetOrLoad(5, func(uint64) (any, replacement.Cost, error) { panic("kaboom") })
	}()
	a := tr.Attribution()
	if a.Spans != 1 || a.Outcomes[reqspan.OutcomeError] != 1 {
		t.Fatalf("attribution after panic = %+v, want 1 error span", a)
	}
}
