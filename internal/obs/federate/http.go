package federate

import (
	"encoding/json"
	"net/http"
	"time"

	"costcache/internal/obs"
	"costcache/internal/obs/alert"
	"costcache/internal/obs/tsdb"
)

// NodeStatus is one node's row in the /debug/federate document.
type NodeStatus struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	Err  string `json:"err,omitempty"`
	// Totals are the node's summed engine counters as of the last scrape.
	Totals nodeTotals `json:"totals"`
	// Share is the node's fraction of cluster lookups (0 when idle).
	Share float64 `json:"share"`
	// HitRate is hits / (hits + misses) cumulatively (0 when idle).
	HitRate float64 `json:"hit_rate"`
	// Engine, Alerts and Timeseries are the node's own debug documents,
	// passed through verbatim from the last successful fetch.
	Engine     json.RawMessage `json:"engine,omitempty"`
	Alerts     json.RawMessage `json:"alerts,omitempty"`
	Timeseries json.RawMessage `json:"timeseries,omitempty"`
}

// ClusterSignals are the derived cluster-level values in /debug/federate,
// evaluated over the federated store's most recent fully covered window.
type ClusterSignals struct {
	// HitRate is the global windowed hit rate across every node.
	HitRate float64 `json:"hit_rate"`
	// CostPerAccess is the global windowed miss cost per lookup.
	CostPerAccess float64 `json:"cost_per_access"`
	// NodeSkew is the hottest node's lookup share over its uniform share
	// (1 balanced, ≥2 hot) — the ring-imbalance signal.
	NodeSkew float64 `json:"node_skew"`
	// MissSpread is max − min of per-node miss ratios — the node-outlier
	// signal.
	MissSpread float64 `json:"miss_spread"`
}

// ClusterStatus is the /debug/federate response document.
type ClusterStatus struct {
	// Scrapes is the federated store's sample count.
	Scrapes int64 `json:"scrapes"`
	// LastUnixMS is the timestamp of the last scrape.
	LastUnixMS int64 `json:"last_unix_ms"`
	// Cluster carries the derived cluster signals.
	Cluster ClusterSignals `json:"cluster"`
	// Nodes carries one row per scraped node, in configuration order.
	Nodes []NodeStatus `json:"nodes"`
	// Rules are the fleet alert rules' current standings.
	Rules []alert.Summary `json:"rules"`
}

// Status assembles the /debug/federate document. window selects the
// cluster-signal evaluation window (0 = the fleet rules' default).
func (f *Federator) Status(window time.Duration) ClusterStatus {
	if window <= 0 {
		window = DefaultRuleWindow(f.store.ResolutionAt(0).Step)
	}
	now := f.LastTime()
	st := ClusterStatus{Scrapes: f.store.Samples()}
	if !now.IsZero() {
		st.LastUnixMS = now.UnixNano() / int64(time.Millisecond)
		st.Rules = f.alerts.Summaries(now)
	}
	value := func(q tsdb.Query) float64 {
		v, _, _ := f.store.Value(q, 0, window)
		return v
	}
	st.Cluster = ClusterSignals{
		HitRate:       value(tsdb.Query{Kind: tsdb.Ratio, Num: []string{"fed_hits"}, Den: []string{"fed_lookups"}}),
		CostPerAccess: value(tsdb.Query{Kind: tsdb.Ratio, Num: []string{"fed_cost_paid"}, Den: []string{"fed_lookups"}}),
		NodeSkew:      value(tsdb.Query{Kind: tsdb.Skew, Num: []string{"fed_lookups"}}),
		MissSpread:    value(tsdb.Query{Kind: tsdb.SpreadRatio, Num: []string{"fed_misses"}, Den: []string{"fed_lookups"}}),
	}
	var lookups int64
	for _, n := range f.nodes {
		n.mu.Lock()
		lookups += n.totals.Hits + n.totals.Misses
		n.mu.Unlock()
	}
	for _, n := range f.nodes {
		n.mu.Lock()
		row := NodeStatus{
			Node:       n.name,
			Addr:       n.addr,
			Up:         n.up,
			Err:        n.lastErr,
			Totals:     n.totals,
			Engine:     n.engine,
			Alerts:     n.alerts,
			Timeseries: n.series,
		}
		if l := n.totals.Hits + n.totals.Misses; l > 0 {
			row.HitRate = float64(n.totals.Hits) / float64(l)
			if lookups > 0 {
				row.Share = float64(l) / float64(lookups)
			}
		}
		n.mu.Unlock()
		st.Nodes = append(st.Nodes, row)
	}
	return st
}

// Handler serves the /debug/federate document as JSON.
func (f *Federator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(f.Status(0))
	})
}

// Mux returns the federator's full observability surface:
//
//	/metrics           the federated registry (mirrors + fed_* rollups)
//	/debug/timeseries  standard signals over the federated store
//	/debug/alerts      the fleet alert engine
//	/debug/federate    per-node rows + cluster rollups (this package)
func (f *Federator) Mux() *obs.Mux {
	m := obs.NewMux(f.reg)
	m.Handle("/debug/timeseries", "federated cluster time-series signals (JSON)", tsdb.Handler(f.store))
	m.Handle("/debug/alerts", "fleet alert rules and transitions (JSON)", alert.Handler(f.alerts, f.LastTime))
	m.Handle("/debug/federate", "per-node status and cluster rollups (JSON)", f.Handler())
	return m
}

// Serve starts the federated observability surface on addr with the standard
// lifecycle (obs.ServeHandler): the returned server exposes the bound
// address and a graceful Close.
func Serve(addr string, f *Federator) (*obs.Server, error) {
	return obs.ServeHandler(addr, f.Mux())
}
