// Command tracegen generates the synthetic multiprocessor workload traces
// (Table 1 analogues) and writes them in the binary or text trace format,
// or prints their characteristics.
//
// Usage:
//
//	tracegen -bench Barnes|LU|Ocean|Raytrace [-o trace.bin] [-format bin|text]
//
// Without -o, tracegen prints the Table 1 characteristics of the chosen
// benchmark (or of all four when -bench is omitted).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/obs"
	"costcache/internal/tabulate"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	bench := flag.String("bench", "", "benchmark name (Barnes, LU, Ocean, Raytrace); empty = all")
	out := flag.String("o", "", "output file (omit to print statistics)")
	format := flag.String("format", "bin", "output format: bin or text")
	sample := flag.Int("sample", 0, "sample processor for the statistics")
	flag.Parse()

	var gens []workload.Generator
	if *bench == "" {
		gens = workload.Defaults()
	} else {
		g, ok := workload.ByName(*bench)
		if !ok {
			log.Fatalf("unknown benchmark %q (want Barnes, LU, Ocean or Raytrace)", *bench)
		}
		gens = []workload.Generator{g}
	}

	prog := obs.NewProgress(os.Stderr, nil, "refs")

	if *out != "" {
		if len(gens) != 1 {
			log.Fatal("-o requires a single -bench")
		}
		prog.Phase("generate")
		tr := gens[0].Generate()
		prog.Add(int64(tr.Len()))
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		prog.Phase("write")
		switch *format {
		case "bin":
			err = trace.WriteBinary(f, tr)
		case "text":
			err = trace.WriteText(f, tr)
		default:
			log.Fatalf("unknown format %q", *format)
		}
		if err != nil {
			log.Fatal(err)
		}
		prog.Add(int64(tr.Len()))
		prog.Done()
		fmt.Printf("wrote %d references to %s\n", tr.Len(), *out)
		return
	}

	t := tabulate.New("Synthetic benchmark characteristics (cf. Table 1)",
		"Benchmark", "Procs", "Refs (all)", "Refs (sample)", "Sample view",
		"Footprint MB", "Remote %")
	prog.Phase("summarize")
	for _, g := range gens {
		tr := g.Generate()
		prog.Add(int64(tr.Len()))
		st := tr.Summarize(workload.BlockBytes)
		homes := workload.FirstTouchHomes(tr, workload.BlockBytes)
		rf := tr.RemoteFraction(int16(*sample), workload.BlockBytes, workload.HomeFunc(homes, 0))
		view := tr.SampleView(int16(*sample))
		t.AddF(g.Name(), tr.NumProcs, st.Refs, st.PerProc[*sample], len(view),
			float64(st.FootprintBytes)/(1<<20), rf*100)
	}
	prog.Done()
	t.Fprint(os.Stdout)
}
