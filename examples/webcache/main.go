// Webcache: the domain GreedyDual came from. Objects are fetched from
// origins with wildly different latencies (CDN edge, regional, overseas),
// and the cache should minimize total fetch latency, not fetch count.
//
// This example builds a single-level 4-way cache whose cost function is the
// per-origin fetch latency and compares LRU, GD, BCL, DCL and ACL on a
// Zipf-popularity request stream. With wide cost differentials GD is
// competitive, exactly as the paper observes; the LRU extensions stay close
// while degrading more gracefully when the differentials narrow.
package main

import (
	"fmt"
	"math/rand"

	"costcache"
)

// originLatency maps an object to its origin's fetch latency (the miss
// cost): 16 origins from a 5ms edge to a 305ms overseas origin. The origin
// assignment is a hash so it is independent of the cache's set indexing.
func originLatency(block uint64) costcache.Cost {
	h := block * 0x9e3779b97f4a7c15
	origin := (h >> 32) % 16
	return costcache.Cost(5 * (1 + origin*4)) // 5 .. 305 "ms"
}

func run(p costcache.Policy, requests []uint64) int64 {
	c := costcache.NewCache(costcache.CacheConfig{
		Name:       "proxy",
		SizeBytes:  256 * 64, // 256 cached objects
		Ways:       4,
		BlockBytes: 64,
		Policy:     p,
		Cost:       costcache.CostFunc(originLatency),
	})
	for _, obj := range requests {
		c.Access(obj*64, false)
	}
	return c.Stats().AggCost
}

func main() {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.1, 1, 4095)
	requests := make([]uint64, 300000)
	for i := range requests {
		requests[i] = zipf.Uint64()
	}

	lru := run(costcache.NewLRU(), requests)
	fmt.Printf("%-4s total fetch latency: %9d ms (baseline)\n", "LRU", lru)
	for _, p := range []costcache.Policy{
		costcache.NewGD(), costcache.NewBCL(), costcache.NewDCL(0), costcache.NewACL(0),
	} {
		got := run(p, requests)
		fmt.Printf("%-4s total fetch latency: %9d ms  savings=%6.2f%%\n",
			p.Name(), got, 100*costcache.RelativeSavings(lru, got))
	}
}
