package loadgen

import (
	"testing"

	"costcache/internal/engine"
	"costcache/internal/fault"
	"costcache/internal/resilience"
)

// chaosRun drives one single-worker closed-loop run with the given fault
// injector and resilience config, snapshotting the engine counters every
// 1000 ops. The snapshot stream — not just the final totals — is what the
// determinism tests compare, so divergence anywhere mid-run is caught.
func chaosRun(t *testing.T, inj *fault.LoaderInjector, rc *resilience.Config) ([]engine.Stats, Result) {
	t.Helper()
	ecfg := engine.Config{Shards: 4, Sets: 256, Ways: 4, Policy: dclFactory}
	lcfg := Config{
		Mode: Closed, Workers: 1, Ops: 20000,
		Keys: 4096, ZipfS: 1.2, Seed: 7,
		Faults: inj,
	}
	if rc != nil {
		c := *rc
		c.Classify = lcfg.CostSource().MissCost
		ecfg.Resilience = resilience.New(c, nil)
	}
	e := engine.New(ecfg)
	var stream []engine.Stats
	lcfg.OnDone = func(done int64) {
		if done%1000 == 0 {
			st := e.Stats()
			st.LockWaitNs = 0 // timing, legitimately varies
			stream = append(stream, st)
		}
	}
	res, err := Run(e, lcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stream, res
}

// brownoutConfig is the shared chaos fixture: class-8 brownout plan plus
// retries, breakers and serve-stale (no deadline — wall time must never
// influence the counter stream).
func brownoutConfig(t *testing.T) (*fault.LoaderInjector, *resilience.Config) {
	t.Helper()
	plan, err := fault.LoaderScenario("backend-brownout", 7)
	if err != nil {
		t.Fatal(err)
	}
	return fault.NewLoaderInjector(plan), &resilience.Config{
		MaxRetries: 3, RefCost: 8, Seed: 7,
		BreakerRate: 0.5, BreakerWindow: 64, BreakerMin: 16, BreakerCooldown: 400,
		ServeStale: true,
	}
}

// TestChaosRunDeterministic is the PR's replayability contract: the same
// seed and fault plan produce a byte-identical counter stream — timeouts,
// retries, sheds and stale serves included — on every rerun.
func TestChaosRunDeterministic(t *testing.T) {
	inj1, rc := brownoutConfig(t)
	s1, r1 := chaosRun(t, inj1, rc)
	inj2, _ := brownoutConfig(t)
	s2, r2 := chaosRun(t, inj2, rc)

	if len(s1) != len(s2) {
		t.Fatalf("stream lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("counter stream diverged at snapshot %d:\n run1 %+v\n run2 %+v", i, s1[i], s2[i])
		}
	}
	if r1.Errors != r2.Errors || r1.StaleServes != r2.StaleServes {
		t.Fatalf("result deltas diverged: (%d, %d) vs (%d, %d)",
			r1.Errors, r1.StaleServes, r2.Errors, r2.StaleServes)
	}

	// The chaos actually happened: faults erred, breakers shed, ghosts served.
	last := s1[len(s1)-1]
	if inj1.Errors() == 0 || last.Shed == 0 || last.StaleServed == 0 || last.LoadRetries == 0 {
		t.Fatalf("brownout run too quiet: injector errors %d, stats %+v", inj1.Errors(), last)
	}
	if r1.Errors == 0 || r1.StaleServes == 0 {
		t.Fatalf("result saw no degradation: %+v errors, %d stale", r1.Errors, r1.StaleServes)
	}
}

// TestEmptyPlanMatchesBaseline proves the fault and resilience layers are
// invisible until used: a nil injector with resilience enabled (but a
// healthy backend) produces the exact counter stream of the legacy path.
func TestEmptyPlanMatchesBaseline(t *testing.T) {
	_, rc := brownoutConfig(t)
	sBase, rBase := chaosRun(t, nil, nil)
	sRes, rRes := chaosRun(t, nil, rc)
	if len(sBase) != len(sRes) {
		t.Fatalf("stream lengths differ: %d vs %d", len(sBase), len(sRes))
	}
	for i := range sBase {
		if sBase[i] != sRes[i] {
			t.Fatalf("healthy resilient run diverged from legacy at snapshot %d:\n legacy    %+v\n resilient %+v", i, sBase[i], sRes[i])
		}
	}
	if rBase.Errors != 0 || rRes.Errors != 0 || rRes.StaleServes != 0 {
		t.Fatalf("healthy runs reported degradation: base %d errs, resilient %d errs / %d stale",
			rBase.Errors, rRes.Errors, rRes.StaleServes)
	}
}

// TestBrownoutSparesCheapClasses checks end-to-end class selectivity: the
// backend-brownout scenario targets the high-cost class, so the cheap
// class's loads keep succeeding and only the expensive class's breaker can
// open.
func TestBrownoutSparesCheapClasses(t *testing.T) {
	inj, rc := brownoutConfig(t)
	_, res := chaosRun(t, inj, rc)
	if res.Errors == 0 {
		t.Fatal("brownout produced no errored requests")
	}
	// Errors stay well below the total misses: only the high-cost fraction
	// (~20% of keys) is eligible to fail.
	if res.Errors > res.Stats.Misses/2 {
		t.Fatalf("too many errors for a class-targeted brownout: %d of %d misses",
			res.Errors, res.Stats.Misses)
	}
}
