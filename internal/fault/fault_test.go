package fault

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWindowActiveOneShot(t *testing.T) {
	w := Window{StartNs: 100, EndNs: 200}
	for _, c := range []struct {
		t    int64
		want bool
	}{{0, false}, {99, false}, {100, true}, {199, true}, {200, false}, {1000, false}} {
		if got := w.Active(c.t); got != c.want {
			t.Errorf("Active(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := w.End(150); got != 200 {
		t.Errorf("End(150) = %d, want 200", got)
	}
}

func TestWindowActivePeriodic(t *testing.T) {
	w := Window{StartNs: 100, EndNs: 200, PeriodNs: 1000}
	for _, c := range []struct {
		t    int64
		want bool
	}{
		{0, false}, {100, true}, {199, true}, {200, false}, {999, false},
		{1100, true}, {1199, true}, {1200, false}, {5150, true},
	} {
		if got := w.Active(c.t); got != c.want {
			t.Errorf("Active(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := w.End(5150); got != 5200 {
		t.Errorf("End(5150) = %d, want 5200", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"empty window", Plan{Links: []LinkFault{{Dir: "east", Outage: true}}}, "is empty"},
		{"negative start", Plan{Links: []LinkFault{{Dir: "east", Outage: true, Window: Window{StartNs: -5, EndNs: 5}}}}, "before t=0"},
		{"short period", Plan{Links: []LinkFault{{Dir: "east", Outage: true, Window: Window{EndNs: 100, PeriodNs: 50}}}}, "period 50 shorter"},
		{"bad dir", Plan{Links: []LinkFault{{Dir: "up", Outage: true, Window: Window{EndNs: 100}}}}, `dir "up"`},
		{"no effect", Plan{Links: []LinkFault{{Dir: "east", Window: Window{EndNs: 100}}}}, "needs outage or slowdown"},
		{"eternal outage", Plan{Links: []LinkFault{{Dir: "east", Outage: true, Window: Window{EndNs: 1<<40 + 1}}}}, "stall the run"},
		{"gapless periodic outage", Plan{Links: []LinkFault{{Dir: "east", Outage: true, Window: Window{EndNs: 100, PeriodNs: 100}}}}, "no idle gap"},
		{"dir no extra", Plan{Dirs: []HotFault{{Window: Window{EndNs: 100}}}}, "extra_ns > 0"},
		{"bank bad node", Plan{Banks: []HotFault{{Node: -2, ExtraNs: 5, Window: Window{EndNs: 100}}}}, "node -2"},
		{"node no extra", Plan{Nodes: []NodeFault{{Window: Window{EndNs: 100}}}}, "extra_ns > 0"},
		{"negative retry", Plan{Retry: Retry{BaseNs: -1}, Nodes: []NodeFault{{ExtraNs: 1, Window: Window{EndNs: 1}}}}, "negative retry"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Name: "round-trip",
		Seed: 42,
		Links: []LinkFault{
			{Node: 3, Dir: "east", Window: Window{StartNs: 10, EndNs: 500, PeriodNs: 1000}, Outage: true},
			{Node: -1, Dir: "any", Window: Window{EndNs: 200}, Slowdown: 4},
		},
		Dirs:  []HotFault{{Node: 1, Window: Window{EndNs: 100}, ExtraNs: 60}},
		Banks: []HotFault{{Node: 2, Bank: -1, Window: Window{EndNs: 100}, ExtraNs: 30}},
		Nodes: []NodeFault{{Node: 0, Window: Window{EndNs: 100}, ExtraNs: 400}},
		Retry: Retry{BaseNs: 25, CapNs: 800},
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\nwrote %+v\nread  %+v", p, got)
	}
	if p.Hash() != got.Hash() {
		t.Fatal("round trip changed the hash")
	}
}

func TestReadFileNamesUnnamedPlans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	p := &Plan{Nodes: []NodeFault{{Window: Window{EndNs: 100}, ExtraNs: 10}}}
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != path {
		t.Fatalf("Name = %q, want the file path %q", got.Name, path)
	}
}

func TestHash(t *testing.T) {
	a := &Plan{Nodes: []NodeFault{{Window: Window{EndNs: 100}, ExtraNs: 10}}}
	b := &Plan{Nodes: []NodeFault{{Window: Window{EndNs: 100}, ExtraNs: 10}}}
	if a.Hash() != b.Hash() {
		t.Fatal("identical plans hash differently")
	}
	b.Nodes[0].ExtraNs = 11
	if a.Hash() == b.Hash() {
		t.Fatal("different plans share a hash")
	}
	empty := &Plan{Name: "named but empty"}
	if empty.Hash() != "" {
		t.Fatalf("empty plan hash = %q, want \"\"", empty.Hash())
	}
	var nilPlan *Plan
	if nilPlan.Hash() != "" {
		t.Fatal("nil plan must hash to \"\"")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	for _, name := range ScenarioNames() {
		a, err := Scenario(name, 7, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Scenario(name, 7, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed built different plans", name)
		}
		if a.Empty() {
			t.Errorf("%s: scenario built an empty plan", name)
		}
		c, err := Scenario(name, 8, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Hash() == c.Hash() {
			t.Errorf("%s: seeds 7 and 8 built identical plans", name)
		}
	}
}

func TestScenarioUnknown(t *testing.T) {
	_, err := Scenario("power-sag", 1, 4)
	if err == nil || !strings.Contains(err.Error(), "link-brownout") {
		t.Fatalf("want an error listing valid scenarios, got %v", err)
	}
}

func TestLinkIndex(t *testing.T) {
	if got := LinkIndex(0, DirEast); got != 0 {
		t.Errorf("LinkIndex(0, east) = %d", got)
	}
	if got := LinkIndex(5, DirSouth); got != 5*LinksPerNode+DirSouth {
		t.Errorf("LinkIndex(5, south) = %d", got)
	}
}

func TestInjectorEmptyPlanIsIdentity(t *testing.T) {
	in := NewInjector(&Plan{}, 4, 4)
	for _, tm := range []int64{0, 50, 12345} {
		if got := in.LinkReady(3, tm); got != tm {
			t.Errorf("LinkReady(3, %d) = %d", tm, got)
		}
		if got := in.LinkOccupy(3, tm, 62); got != 62 {
			t.Errorf("LinkOccupy = %d, want 62", got)
		}
		if in.DirExtra(0, tm) != 0 || in.BankExtra(0, 0, tm) != 0 || in.NodeExtra(0, tm) != 0 {
			t.Error("empty plan injected extra occupancy")
		}
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("empty plan accumulated stats: %+v", st)
	}
}

func TestLinkReadyBackoffSequence(t *testing.T) {
	p := &Plan{
		Links: []LinkFault{{Node: 0, Dir: "east", Outage: true, Window: Window{EndNs: 1000}}},
		Retry: Retry{BaseNs: 50, CapNs: 3200},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p, 4, 4)
	l := LinkIndex(0, DirEast)
	// Backoff walk from t=0: +50 +100 +200 +400 +800 clears the [0,1000)
	// outage at t=1550.
	if got := in.LinkReady(l, 0); got != 1550 {
		t.Fatalf("LinkReady = %d, want 1550", got)
	}
	st := in.Stats()
	if st.Nacks != 5 || st.Retries != 5 || st.BackoffNs != 1550 {
		t.Fatalf("stats = %+v, want 5 NACKs / 5 retries / 1550 ns backoff", st)
	}
	// Other links and post-outage times are unaffected.
	if got := in.LinkReady(LinkIndex(0, DirWest), 0); got != 0 {
		t.Fatalf("unaffected link delayed to %d", got)
	}
	if got := in.LinkReady(l, 1000); got != 1000 {
		t.Fatalf("post-outage send delayed to %d", got)
	}
}

func TestLinkReadyBackoffCaps(t *testing.T) {
	p := &Plan{
		Links: []LinkFault{{Node: 0, Dir: "east", Outage: true, Window: Window{EndNs: 200_000}}},
		Retry: Retry{BaseNs: 50, CapNs: 3200},
	}
	in := NewInjector(p, 4, 4)
	got := in.LinkReady(LinkIndex(0, DirEast), 0)
	if got < 200_000 {
		t.Fatalf("cleared at %d, inside the outage", got)
	}
	// Once capped, retries step by exactly CapNs.
	if got-200_000 >= 3200 {
		t.Fatalf("cleared %d ns late, more than one capped backoff", got-200_000)
	}
	st := in.Stats()
	if st.BackoffNs != got {
		t.Fatalf("backoff %d ns, but the walk covered %d ns from t=0", st.BackoffNs, got)
	}
}

func TestLinkReadyPermanentOutagePanics(t *testing.T) {
	// Two phase-shifted periodic windows tile all of simulated time; each
	// passes Validate alone (both have idle gaps), but their union never
	// clears. The retry loop must fail with a Diagnostic, not spin forever.
	p := &Plan{
		Links: []LinkFault{
			{Node: 0, Dir: "east", Outage: true, Window: Window{StartNs: 0, EndNs: 60, PeriodNs: 100}},
			{Node: 0, Dir: "east", Outage: true, Window: Window{StartNs: 50, EndNs: 110, PeriodNs: 100}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p, 4, 4)
	defer func() {
		d, ok := recover().(Diagnostic)
		if !ok {
			t.Fatal("want a Diagnostic panic")
		}
		if !strings.Contains(d.Error(), "never clears") {
			t.Fatalf("diagnostic %q", d.Error())
		}
	}()
	in.LinkReady(LinkIndex(0, DirEast), 0)
	t.Fatal("LinkReady returned from a permanent outage")
}

func TestSlowdownPicksStrongestWindow(t *testing.T) {
	p := &Plan{Links: []LinkFault{
		{Node: 0, Dir: "east", Slowdown: 2, Window: Window{EndNs: 1000}},
		{Node: 0, Dir: "east", Slowdown: 5, Window: Window{EndNs: 500}},
	}}
	in := NewInjector(p, 4, 4)
	l := LinkIndex(0, DirEast)
	if got := in.LinkOccupy(l, 100, 62); got != 310 {
		t.Fatalf("overlap occupancy = %d, want 62*5 = 310", got)
	}
	if got := in.LinkOccupy(l, 700, 62); got != 124 {
		t.Fatalf("single-window occupancy = %d, want 62*2 = 124", got)
	}
	if got := in.LinkOccupy(l, 2000, 62); got != 62 {
		t.Fatalf("post-window occupancy = %d, want 62", got)
	}
	st := in.Stats()
	if st.SlowedHops != 2 || st.SlowNs != (310-62)+(124-62) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHotAndNodeExtras(t *testing.T) {
	p := &Plan{
		Dirs:  []HotFault{{Node: 1, Window: Window{EndNs: 100}, ExtraNs: 60}},
		Banks: []HotFault{{Node: 2, Bank: 3, Window: Window{EndNs: 100}, ExtraNs: 30}},
		Nodes: []NodeFault{{Node: -1, Window: Window{EndNs: 100}, ExtraNs: 400}},
	}
	in := NewInjector(p, 4, 4)
	if got := in.DirExtra(1, 50); got != 60 {
		t.Errorf("DirExtra(1) = %d", got)
	}
	if got := in.DirExtra(0, 50); got != 0 {
		t.Errorf("DirExtra(0) = %d", got)
	}
	if got := in.BankExtra(2, 3, 50); got != 30 {
		t.Errorf("BankExtra(2,3) = %d", got)
	}
	if got := in.BankExtra(2, 0, 50); got != 0 {
		t.Errorf("BankExtra(2,0) = %d", got)
	}
	// Node -1 selects every node.
	if in.NodeExtra(0, 50) != 400 || in.NodeExtra(15, 50) != 400 {
		t.Error("node -1 fault must afflict every node")
	}
	st := in.Stats()
	if st.DirHotNs != 60 || st.BankHotNs != 30 || st.DegradedMisses != 2 || st.NodeDegNs != 800 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Events() != st.Nacks+st.SlowedHops+st.DegradedMisses {
		t.Fatal("Events() out of sync with the counters")
	}
}

func TestRetryDefaults(t *testing.T) {
	p := &Plan{}
	if r := p.retry(); r != DefaultRetry() {
		t.Fatalf("zero retry = %+v, want default", r)
	}
	p.Retry = Retry{BaseNs: 5000} // cap below base: lift cap to base
	if r := p.retry(); r.CapNs != 5000 {
		t.Fatalf("cap = %d, want lifted to base 5000", r.CapNs)
	}
}
