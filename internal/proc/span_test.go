package proc

import (
	"testing"

	"costcache/internal/obs/span"
)

func TestWaitMSHRSpanRecordsIssueStall(t *testing.T) {
	p := DefaultParams()
	p.MSHRs = 1
	w := New(p, 2)
	tr := span.NewTracer(nil, nil)

	// First miss occupies the sole MSHR until t=500; no wait, no segment.
	sp := tr.Begin(0, 1, false, 0)
	if got := w.WaitMSHRSpan(0, sp); got != 0 {
		t.Fatalf("free MSHR delayed issue to %d", got)
	}
	if len(sp.Segs) != 0 {
		t.Fatalf("stall-free wait recorded %v", sp.Segs)
	}
	w.AddMiss(500)
	tr.Finish(sp, 500, 'U', true, false)

	// Second miss at t=100 must wait until 500, recorded as pure queueing.
	sp2 := tr.Begin(0, 2, false, 100)
	got := w.WaitMSHRSpan(100, sp2)
	if got != 500 {
		t.Fatalf("issue at %d, want 500", got)
	}
	if len(sp2.Segs) != 1 {
		t.Fatalf("MSHR stall recorded %d segments, want 1", len(sp2.Segs))
	}
	seg := sp2.Segs[0]
	if seg.Stage != span.StageIssue || seg.Start != 100 || seg.End != 500 || seg.Queue != 400 {
		t.Fatalf("issue segment = %+v, want [100,500] queue 400", seg)
	}

	// nil span: same timing, no recording, no panic.
	w2 := New(p, 2)
	w2.AddMiss(500)
	if got := w2.WaitMSHRSpan(100, nil); got != 500 {
		t.Fatalf("nil-span wait = %d, want 500", got)
	}
}
