package alert

import (
	"encoding/json"
	"net/http"
	"time"
)

type alertsPayload struct {
	Rules  []Summary `json:"rules"`
	Events []Event   `json:"events"`
}

// Handler serves the engine's rule summaries and recent transitions as JSON
// at /debug/alerts. Ongoing firing durations are extended to the store's
// last sample time, not the wall clock, so deterministic runs render
// deterministic durations.
func Handler(e *Engine, lastTime func() time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := lastTime()
		if now.IsZero() {
			now = time.Now()
		}
		out := alertsPayload{Rules: e.Summaries(now), Events: e.Events()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
