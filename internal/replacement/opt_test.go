package replacement

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refs(blocks ...uint64) []OptEvent {
	ev := make([]OptEvent, len(blocks))
	for i, b := range blocks {
		ev[i] = OptEvent{Block: b}
	}
	return ev
}

func TestOptimalHandWorked(t *testing.T) {
	// a b c a b c on 2 ways: OPT gets 4 misses, LRU thrashes with 6.
	ev := refs(0, 1, 2, 0, 1, 2)
	if got := OptimalMisses(ev, 2); got != 4 {
		t.Fatalf("OPT misses = %d, want 4", got)
	}
	if got := LRUMisses(ev, 2); got != 6 {
		t.Fatalf("LRU misses = %d, want 6", got)
	}
}

func TestOptimalNoEvictionNeeded(t *testing.T) {
	ev := refs(0, 1, 0, 1, 0, 1)
	if got := OptimalMisses(ev, 2); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	if got := LRUMisses(ev, 2); got != 2 {
		t.Fatalf("LRU misses = %d, want 2", got)
	}
}

func TestOptimalInvalidation(t *testing.T) {
	ev := []OptEvent{
		{Block: 0},
		{Block: 0, Invalidate: true},
		{Block: 0},
	}
	if got := OptimalMisses(ev, 2); got != 2 {
		t.Fatalf("misses = %d, want 2 (invalidation forces a re-miss)", got)
	}
	if got := LRUMisses(ev, 2); got != 2 {
		t.Fatalf("LRU misses = %d, want 2", got)
	}
	// Invalidating an absent block is a no-op.
	ev = []OptEvent{{Block: 5, Invalidate: true}, {Block: 5}}
	if got := OptimalMisses(ev, 2); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

// OPT is a lower bound on LRU for any trace (inclusion of the MIN algorithm).
func TestOptimalLowerBoundsLRUQuick(t *testing.T) {
	f := func(seed int64, waysRaw uint8, n uint16) bool {
		ways := int(waysRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		ev := make([]OptEvent, int(n%2000)+10)
		for i := range ev {
			ev[i] = OptEvent{
				Block:      uint64(rng.Intn(40)),
				Invalidate: rng.Intn(20) == 0,
			}
		}
		return OptimalMisses(ev, ways) <= LRUMisses(ev, ways)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// With a single way, OPT and LRU coincide (both miss unless the same block
// repeats consecutively).
func TestOptimalOneWayEqualsLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ev := make([]OptEvent, 500)
		for i := range ev {
			ev[i] = OptEvent{Block: uint64(rng.Intn(6))}
		}
		return OptimalMisses(ev, 1) == LRUMisses(ev, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalPanicsOnBadWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OptimalMisses(nil, 0)
}
