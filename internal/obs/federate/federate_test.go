package federate

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"costcache/internal/obs"
)

// fakeNode serves a minimal node observability surface: a real registry's
// /metrics plus empty debug documents.
func fakeNode(t *testing.T, reg *obs.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(obs.Handler(reg))
	t.Cleanup(srv.Close)
	return srv
}

// seed populates one node's engine counters: lookups split into hits/misses
// across two shards, so mirrors carry labels and rollups sum variants.
func seed(reg *obs.Registry, hits, misses int64) {
	reg.Counter(obs.Name("engine_hits", "shard", "0")).Add(hits / 2)
	reg.Counter(obs.Name("engine_hits", "shard", "1")).Add(hits - hits/2)
	reg.Counter(obs.Name("engine_misses", "shard", "0")).Add(misses)
	reg.Counter("engine_cost_paid").Add(misses * 8)
}

func TestFederateMirrorsAndRollups(t *testing.T) {
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	seed(regA, 90, 10)
	seed(regB, 50, 50)
	a, b := fakeNode(t, regA), fakeNode(t, regB)

	f, err := New(Config{Nodes: []string{a.URL, b.URL}, Step: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	// Scrape 1 discovers every mirror at zero; scrape 2 lands the full
	// cumulative values as one bucket's deltas.
	f.ScrapeOnce(base.Add(1 * time.Second))
	f.ScrapeOnce(base.Add(2 * time.Second))

	var text bytes.Buffer
	f.Registry().WriteText(&text)
	for _, want := range []string{
		`engine_hits{node="0",shard="0"} 45`,
		`engine_hits{node="1",shard="1"} 25`,
		`fed_lookups{node="0"} 100`,
		`fed_lookups{node="1"} 100`,
		`fed_misses{node="1"} 50`,
		`fed_scrapes{node="0"} 2`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}

	st := f.Status(0)
	if len(st.Nodes) != 2 || !st.Nodes[0].Up || !st.Nodes[1].Up {
		t.Fatalf("node status: %+v", st.Nodes)
	}
	if st.Nodes[0].HitRate != 0.9 || st.Nodes[1].HitRate != 0.5 {
		t.Fatalf("hit rates: %v %v", st.Nodes[0].HitRate, st.Nodes[1].HitRate)
	}
	if st.Cluster.HitRate != 0.7 {
		t.Fatalf("cluster hit rate %v, want 0.7", st.Cluster.HitRate)
	}
	// Miss ratios 0.1 vs 0.5: the spread (0.4) breaches the node-outlier
	// threshold (0.15) and, with For=0, the rule must be firing.
	if st.Cluster.MissSpread != 0.4 {
		t.Fatalf("miss spread %v, want 0.4", st.Cluster.MissSpread)
	}
	firing := false
	for _, r := range st.Rules {
		if r.Rule == "node-outlier-hit-rate" && r.State == "firing" {
			firing = true
		}
	}
	if !firing {
		t.Fatalf("node-outlier-hit-rate not firing: %+v", st.Rules)
	}
}

// TestFederateDeterministicAlertJSONL: the same workload scraped under the
// same simulated clock must stream byte-identical alert transitions.
func TestFederateDeterministicAlertJSONL(t *testing.T) {
	run := func() string {
		regA, regB := obs.NewRegistry(), obs.NewRegistry()
		seed(regA, 95, 5)
		seed(regB, 20, 80)
		a, b := fakeNode(t, regA), fakeNode(t, regB)
		f, err := New(Config{Nodes: []string{a.URL, b.URL}, Step: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		var jsonl bytes.Buffer
		f.Alerts().SetSink(&jsonl)
		base := time.Unix(0, 0)
		for i := 1; i <= 5; i++ {
			f.ScrapeOnce(base.Add(time.Duration(i) * time.Second))
		}
		return jsonl.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("alert JSONL not deterministic:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, `"rule":"node-outlier-hit-rate","from":"pending","to":"firing"`) {
		t.Fatalf("expected one firing transition, got:\n%s", first)
	}
	// Exactly once: a persistent condition under For=0 transitions
	// inactive→pending→firing a single time and then stays firing.
	if strings.Count(first, `"to":"firing"`) != 1 {
		t.Fatalf("node-outlier fired more than once:\n%s", first)
	}
}

func TestFederateDownNode(t *testing.T) {
	reg := obs.NewRegistry()
	seed(reg, 10, 10)
	a := fakeNode(t, reg)
	f, err := New(Config{Nodes: []string{a.URL, "http://127.0.0.1:1"}, Step: time.Second, Timeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeOnce(time.Unix(1, 0))
	st := f.Status(0)
	if !st.Nodes[0].Up || st.Nodes[1].Up {
		t.Fatalf("up flags: %+v %+v", st.Nodes[0].Up, st.Nodes[1].Up)
	}
	if st.Nodes[1].Err == "" {
		t.Fatal("down node should carry an error")
	}
	var text bytes.Buffer
	f.Registry().WriteText(&text)
	if !strings.Contains(text.String(), `fed_scrape_errors{node="1"} 1`) {
		t.Fatalf("missing scrape error counter:\n%s", text.String())
	}
}

func TestFederatedName(t *testing.T) {
	cases := [][3]string{
		{`engine_hits{shard="0"}`, "1", `engine_hits{node="1",shard="0"}`},
		{`server_shed`, "0", `server_shed{node="0"}`},
	}
	for _, c := range cases {
		if got := federatedName(c[0], c[1]); got != c[2] {
			t.Errorf("federatedName(%q,%q) = %q, want %q", c[0], c[1], got, c[2])
		}
	}
}
