package workload

import "costcache/internal/trace"

// Program is the per-processor, barrier-structured form of a workload: the
// input of the execution-driven CC-NUMA simulator (Section 4). Phases are
// separated by global barriers; within a phase each processor executes its
// reference list in order, interleaving with the others under the timing
// model rather than a pre-chosen trace order.
type Program struct {
	// Name is the benchmark name.
	Name string
	// Procs is the number of processors.
	Procs int
	// Phases holds, for each barrier-delimited phase, each processor's
	// ordered references.
	Phases [][][]trace.Ref
}

// TotalRefs returns the total number of references across all processors.
func (p *Program) TotalRefs() int {
	n := 0
	for _, ph := range p.Phases {
		for _, refs := range ph {
			n += len(refs)
		}
	}
	return n
}

// buildProgram snapshots the builder's phases as a Program. Unlike build it
// performs no interleaving: the timing simulator decides the global order.
func (b *builder) buildProgram(name string) *Program {
	b.barrier()
	p := &Program{Name: name, Procs: b.procs, Phases: b.phases}
	b.phases = nil
	return p
}

// ProgramOf builds the per-processor program form of a generator. All the
// package's generators support it; ok is false otherwise.
func ProgramOf(g Generator) (*Program, bool) {
	type programmer interface{ Program() *Program }
	if pg, isP := g.(programmer); isP {
		return pg.Program(), true
	}
	return nil, false
}

// Program returns the barrier-structured form of the Barnes workload.
func (w Barnes) Program() *Program { return w.emit().buildProgram(w.Name()) }

// Program returns the barrier-structured form of the LU workload.
func (l LU) Program() *Program { return l.emit().buildProgram(l.Name()) }

// Program returns the barrier-structured form of the Ocean workload.
func (w Ocean) Program() *Program { return w.emit().buildProgram(w.Name()) }

// Program returns the barrier-structured form of the Raytrace workload.
func (w Raytrace) Program() *Program { return w.emit().buildProgram(w.Name()) }

// Program returns the barrier-structured form of the Synthetic workload.
func (w Synthetic) Program() *Program { return w.emit().buildProgram(w.Name()) }
