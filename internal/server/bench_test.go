// Serving-tier benchmark baseline: BenchmarkServerLocalhost measures the
// localhost round trip (single connection, sequential) and pipelined
// throughput at 1/4/16 clients against a warmed engine, so the figures
// isolate protocol + scheduling overhead from policy behavior.
// TestWriteServerBenchManifest re-runs the same configurations through
// testing.Benchmark and writes results/BENCH_server.json in the manifest
// schema cmd/report diffs; it is a no-op unless BENCH_MANIFEST is set, so a
// plain `go test ./...` never spends benchmark time (see `make bench`).
package server_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/server"
)

// benchHotKeys is the warmed key set every benchmark request hits: large
// enough to defeat trivial branch prediction, small enough to never evict.
const benchHotKeys = 1024

// startBenchServer boots a server with a DCL engine and warms benchHotKeys
// so the measured path is hit-serving, not backend loading.
func startBenchServer(tb testing.TB) (*server.Server, func()) {
	tb.Helper()
	eng := engine.New(engine.Config{
		Shards: 8, Sets: 4096, Ways: 4,
		Policy: func() replacement.Policy { return replacement.NewDCL() },
	})
	s, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		Namespaces: []*server.Namespace{{Name: "bench", Engine: eng}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Start(); err != nil {
		tb.Fatal(err)
	}
	cl, err := client.Dial(client.Config{Addr: s.Addr().String(), Timeout: 10 * time.Second})
	if err != nil {
		s.Close()
		tb.Fatal(err)
	}
	for k := uint64(0); k < benchHotKeys; k++ {
		if _, err := cl.GetOrLoad("bench", k, 2); err != nil {
			cl.Close()
			s.Close()
			tb.Fatal(err)
		}
	}
	cl.Close()
	return s, s.Close
}

// benchSequential measures the full request round trip on one connection:
// write, server service, read — no pipelining, so ns/op is the localhost
// RTT floor of the protocol.
func benchSequential(b *testing.B, addr string) {
	cl, err := client.Dial(client.Config{Addr: addr, Conns: 1, Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.GetOrLoad("bench", uint64(i)%benchHotKeys, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipelined measures throughput with `clients` goroutines, each on its
// own pooled connection keeping a 32-request window in flight — the shape a
// loaded service fleet presents, where batched reads and coalesced response
// flushes pay off.
func benchPipelined(b *testing.B, addr string, clients int) {
	cl, err := client.Dial(client.Config{Addr: addr, Conns: clients, Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c == 0 {
			n += b.N % clients
		}
		wg.Add(1)
		go func(n int, key uint64) {
			defer wg.Done()
			const window = 32
			pending := make([]*client.Pending, 0, window)
			drain := func() bool {
				for _, p := range pending {
					if _, err := p.Wait(); err != nil {
						b.Error(err)
						return false
					}
				}
				pending = pending[:0]
				return true
			}
			for i := 0; i < n; i++ {
				p, err := cl.StartGetOrLoad("bench", key%benchHotKeys, 2)
				if err != nil {
					b.Error(err)
					return
				}
				key++
				if pending = append(pending, p); len(pending) == window {
					if !drain() {
						return
					}
				}
			}
			drain()
		}(n, uint64(c)*7919)
	}
	wg.Wait()
}

func BenchmarkServerLocalhost(b *testing.B) {
	s, stop := startBenchServer(b)
	defer stop()
	addr := s.Addr().String()
	b.Run("seq", func(b *testing.B) { benchSequential(b, addr) })
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("pipelined/clients=%d", clients), func(b *testing.B) {
			benchPipelined(b, addr, clients)
		})
	}
}

// TestWriteServerBenchManifest writes the serving-tier benchmark baseline to
// $BENCH_MANIFEST (skipped when unset). `make bench` regenerates
// results/BENCH_server.json; scripts/ci.sh reruns it with a short -benchtime
// and diffs at a generous tolerance.
func TestWriteServerBenchManifest(t *testing.T) {
	path := os.Getenv("BENCH_MANIFEST")
	if path == "" {
		t.Skip("set BENCH_MANIFEST=<path> to write the server benchmark manifest")
	}
	s, stop := startBenchServer(t)
	defer stop()
	addr := s.Addr().String()

	m := manifest.New("bench-server")
	m.SetConfig("shards", 8)
	m.SetConfig("sets", 4096)
	m.SetConfig("ways", 4)
	m.SetConfig("policy", "DCL")
	m.SetConfig("hot_keys", benchHotKeys)
	m.SetConfig("gomaxprocs", runtime.GOMAXPROCS(0))
	m.SetConfig("cpus", runtime.NumCPU())

	r := testing.Benchmark(func(b *testing.B) { benchSequential(b, addr) })
	m.SetMetric("bench_server_seq_ns_op", float64(r.NsPerOp()))
	m.SetMetric("bench_server_seq_allocs_op", float64(r.AllocsPerOp()))
	for _, clients := range []int{1, 4, 16} {
		label := fmt.Sprint(clients)
		r := testing.Benchmark(func(b *testing.B) { benchPipelined(b, addr, clients) })
		m.SetMetric(obs.Name("bench_server_pipelined_ns_op", "clients", label), float64(r.NsPerOp()))
		m.SetMetric(obs.Name("bench_server_pipelined_allocs_op", "clients", label), float64(r.AllocsPerOp()))
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote server benchmark manifest to %s", path)
}
