package costsim

import (
	"sort"

	"costcache/internal/cost"
	"costcache/internal/replacement"
	"costcache/internal/trace"
)

// CalibratedRandom builds a random per-block two-cost mapping whose realized
// high-cost ACCESS fraction matches the target HAF. Blocks are visited in a
// seeded pseudo-random order and marked high-cost until the cumulative
// access mass of marked blocks reaches the target (with a midpoint rule on
// the final block). On traces whose accesses spread evenly over blocks this
// degenerates to the paper's plain random mapping; on skewed traces it keeps
// the x-axis of Figure 3 faithful.
func CalibratedRandom(view []trace.SampleRef, blockBytes int, haf float64, r Ratio, seed uint64) cost.Source {
	weights := make(map[uint64]int64)
	var total int64
	for _, ref := range view {
		if ref.Remote {
			continue
		}
		weights[ref.Addr/uint64(blockBytes)]++
		total++
	}
	type bw struct {
		block uint64
		w     int64
		h     uint64
	}
	blocks := make([]bw, 0, len(weights))
	for b, w := range weights {
		blocks = append(blocks, bw{b, w, mix64(b ^ seed)})
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].h != blocks[j].h {
			return blocks[i].h < blocks[j].h
		}
		return blocks[i].block < blocks[j].block
	})
	target := haf * float64(total)
	high := make(map[uint64]replacement.Cost)
	cum := 0.0
	for _, b := range blocks {
		if cum >= target {
			break
		}
		w := float64(b.w)
		// Midpoint rule: take the block if it lands closer to the target
		// than stopping short would.
		if cum+w <= target || target-cum > cum+w-target {
			high[b.block] = r.High
			cum += w
		}
	}
	return cost.Table{Costs: high, Default: r.Low}
}

// IsHighFunc derives a high-cost predicate from a two-cost source.
func IsHighFunc(src cost.Source, r Ratio) func(block uint64) bool {
	return func(block uint64) bool { return src.MissCost(block) == r.High && r.High != r.Low }
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
