package resilience

import (
	"testing"
	"time"

	"costcache/internal/obs"
	"costcache/internal/replacement"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Deadline: -1},
		{MaxRetries: -1},
		{BackoffBase: -1},
		{BreakerRate: -0.1},
		{BreakerRate: 1.5},
		{BreakerWindow: -1},
		{BreakerRate: 0.5, BreakerMin: 100, BreakerWindow: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: Validate accepted %+v", i, c)
		}
	}
	if err := (Config{Deadline: time.Second, MaxRetries: 3, BreakerRate: 0.5, ServeStale: true}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	for _, c := range []Config{{Deadline: 1}, {MaxRetries: 1}, {BreakerRate: 0.5}, {ServeStale: true}} {
		if !c.Enabled() {
			t.Errorf("config %+v should be Enabled", c)
		}
	}
}

// TestBudget pins the cost-aware retry table: class RefCost earns the full
// budget, cheaper classes a proportional floor, class 0 fails fast.
func TestBudget(t *testing.T) {
	r := New(Config{MaxRetries: 4, RefCost: 8}, nil)
	want := map[replacement.Cost]int{0: 0, 1: 0, 2: 1, 4: 2, 6: 3, 8: 4, 16: 4}
	for c, n := range want {
		if got := r.Budget(c); got != n {
			t.Errorf("Budget(%d) = %d, want %d", c, got, n)
		}
	}
	if New(Config{}, nil).Budget(8) != 0 {
		t.Fatal("retries disabled but Budget > 0")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	r := New(Config{MaxRetries: 8, BackoffBase: base, BackoffCap: cap, Seed: 9}, nil)
	for attempt := 1; attempt <= 8; attempt++ {
		d := r.Backoff(7777, attempt)
		if d != r.Backoff(7777, attempt) {
			t.Fatalf("attempt %d: jitter is not deterministic", attempt)
		}
		exp := base << (attempt - 1)
		if exp > cap {
			exp = cap
		}
		if d < exp/2 || d >= exp {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, exp/2, exp)
		}
	}
	if r.Backoff(1, 0) != 0 {
		t.Fatal("attempt 0 backed off")
	}
	if New(Config{MaxRetries: 3}, nil).Backoff(1, 1) != 0 {
		t.Fatal("zero base backed off")
	}
	// Different keys should usually jitter differently (decorrelation).
	if r.Backoff(1, 3) == r.Backoff(2, 3) && r.Backoff(3, 3) == r.Backoff(4, 3) {
		t.Fatal("jitter ignores the key")
	}
}

// TestBreakerLifecycle walks one class through closed → open (shedding) →
// half-open → closed, checking the deterministic shed accounting.
func TestBreakerLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Config{BreakerRate: 0.5, BreakerWindow: 8, BreakerMin: 4, BreakerCooldown: 3}, reg)
	const class = replacement.Cost(8)

	// 4 failures: min samples reached at 100% failure rate — trips.
	for i := 0; i < 4; i++ {
		if !r.Allow(class) {
			t.Fatalf("load %d shed while closed", i)
		}
		r.Report(class, false)
	}
	if !r.Tripped(class) {
		t.Fatal("breaker did not trip at 4/4 failures")
	}
	if r.Opened() != 1 {
		t.Fatalf("Opened() = %d, want 1", r.Opened())
	}

	// Cooldown: exactly 3 sheds, then the half-open probe is admitted.
	for i := 0; i < 3; i++ {
		if r.Allow(class) {
			t.Fatalf("shed %d allowed during cooldown", i)
		}
	}
	if !r.Allow(class) {
		t.Fatal("half-open probe not admitted after cooldown")
	}
	if r.Allow(class) {
		t.Fatal("second probe admitted while one is in flight")
	}

	// Probe fails: reopen for another cooldown.
	r.Report(class, false)
	if !r.Tripped(class) {
		t.Fatal("failed probe did not reopen the breaker")
	}
	for i := 0; i < 3; i++ {
		if r.Allow(class) {
			t.Fatalf("shed %d allowed during second cooldown", i)
		}
	}

	// Probe succeeds: closed with a fresh window.
	if !r.Allow(class) {
		t.Fatal("second probe not admitted")
	}
	r.Report(class, true)
	if r.Tripped(class) {
		t.Fatal("successful probe left the breaker open")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].State != "closed" || snap[0].Samples != 0 || snap[0].Opened != 2 {
		t.Fatalf("snapshot after recovery: %+v", snap)
	}

	// The gauge mirrors the state and the opened counter the trips.
	if g := reg.Gauge(obs.Name("engine_breaker_state", "class", "cost=8")); g.Value() != int64(Closed) {
		t.Fatalf("state gauge = %d, want closed", g.Value())
	}
	if c := reg.Counter(obs.Name("engine_breaker_opened", "class", "cost=8")); c.Value() != 2 {
		t.Fatalf("opened counter = %d, want 2", c.Value())
	}
}

// TestBreakerRateWindow checks the rolling window: old outcomes age out, and
// the breaker only trips when the recent rate crosses the threshold.
func TestBreakerRateWindow(t *testing.T) {
	r := New(Config{BreakerRate: 0.5, BreakerWindow: 4, BreakerMin: 4, BreakerCooldown: 2}, nil)
	const class = replacement.Cost(1)
	// 3 failures then a success: 3/4 ≥ 0.5 → trips only once min reached.
	r.Report(class, false)
	r.Report(class, false)
	if r.Tripped(class) {
		t.Fatal("tripped below BreakerMin samples")
	}
	r.Report(class, true)
	r.Report(class, true)
	// Window now F F S S = 2/4 ≥ 0.5 → trips at the 4th report.
	if !r.Tripped(class) {
		t.Fatal("did not trip at 2/4 with rate 0.5")
	}
}

func TestBreakerClassIsolation(t *testing.T) {
	r := New(Config{BreakerRate: 0.5, BreakerWindow: 4, BreakerMin: 2, BreakerCooldown: 2}, nil)
	for i := 0; i < 4; i++ {
		r.Report(8, false) // class 8 melts
		r.Report(1, true)  // class 1 is healthy
	}
	if !r.Tripped(8) {
		t.Fatal("melting class did not trip")
	}
	if r.Tripped(1) {
		t.Fatal("healthy class tripped")
	}
	if !r.Allow(1) {
		t.Fatal("healthy class shed")
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot classes = %d, want 2", len(snap))
	}
}

// TestBreakersDisabled: with BreakerRate 0 every load flows and reports are
// dropped without allocating breaker state.
func TestBreakersDisabled(t *testing.T) {
	r := New(Config{MaxRetries: 2}, nil)
	for i := 0; i < 100; i++ {
		if !r.Allow(8) {
			t.Fatal("load shed with breakers disabled")
		}
		r.Report(8, false)
	}
	if r.Tripped(8) || r.Opened() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("disabled breakers accumulated state")
	}
}

func TestClassify(t *testing.T) {
	r := New(Config{Classify: func(key uint64) replacement.Cost {
		if key%2 == 0 {
			return 8
		}
		return 1
	}}, nil)
	if !r.HasClassifier() || r.Class(4) != 8 || r.Class(5) != 1 {
		t.Fatal("classifier not applied")
	}
	bare := New(Config{}, nil)
	if bare.HasClassifier() || bare.Class(4) != 0 {
		t.Fatal("nil classifier should predict class 0")
	}
}
