package manifest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
)

// chromeEvent is the subset of a trace-event record the validator inspects.
type chromeEvent struct {
	Name  string   `json:"name"`
	Cat   string   `json:"cat"`
	Ph    string   `json:"ph"`
	Pid   *int     `json:"pid"`
	Tid   *int     `json:"tid"`
	Ts    *float64 `json:"ts"`
	Dur   *float64 `json:"dur"`
	Args  any      `json:"args"`
	Scope string   `json:"s"`
}

// ValidateChromeTrace checks that data is a well-formed Chrome trace-event
// JSON array as emitted by the span tracers: every event is "X" (complete,
// with pid/tid/ts and non-negative dur) or "M" (metadata). It returns the
// total event count and the number of span slices — simulator misses (cat
// "miss" named by a latency class) plus engine requests (cat "req" named by
// an outcome); stage child slices share the categories but not the names.
// A combined trace carrying both kinds validates as one file.
func ValidateChromeTrace(data []byte) (events, spans int, err error) {
	var evs []chromeEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		return 0, 0, fmt.Errorf("chrome trace: %v", err)
	}
	classes := map[string]bool{
		"local-clean": true, "local-dirty": true,
		"remote-clean": true, "remote-dirty": true,
	}
	outcomes := map[string]bool{
		"hit": true, "miss": true, "coalesced": true, "error": true,
	}
	for i, e := range evs {
		switch e.Ph {
		case "M":
			// metadata: process_name / thread_name
		case "X":
			if e.Pid == nil || e.Tid == nil || e.Ts == nil || e.Dur == nil {
				return 0, 0, fmt.Errorf("chrome trace: event %d: X slice missing pid/tid/ts/dur", i)
			}
			if *e.Dur < 0 {
				return 0, 0, fmt.Errorf("chrome trace: event %d: negative dur", i)
			}
			if (e.Cat == "miss" && classes[e.Name]) || (e.Cat == "req" && outcomes[e.Name]) {
				spans++
			}
		default:
			return 0, 0, fmt.Errorf("chrome trace: event %d: unexpected phase %q", i, e.Ph)
		}
	}
	return len(evs), spans, nil
}

// spanLine is the subset of a JSONL span record the validator inspects.
// Simulator miss lines carry node/class; engine request lines are marked
// "kind":"req" and carry shard/outcome instead.
type spanLine struct {
	ID   *uint64 `json:"id"`
	Kind string  `json:"kind"`
	// Node is a simulator node index on miss lines and a serving-tier node
	// name (a string) on server-side request lines; any admits both.
	Node    any    `json:"node"`
	Class   string `json:"class"`
	Shard   *int   `json:"shard"`
	Outcome string `json:"outcome"`
	Start   *int64 `json:"start"`
	End     *int64 `json:"end"`
	Stages  []struct {
		Stage string `json:"stage"`
		Start *int64 `json:"start"`
		End   *int64 `json:"end"`
	} `json:"stages"`
}

// ValidateSpanJSONL checks that every line of data is a well-formed span
// record — a simulator miss (id, node, class) or an engine request
// ("kind":"req" with id, shard, outcome), each with start <= end and stages
// within the span window — and returns the span count. Interleaved streams
// carrying both kinds validate as one file.
func ValidateSpanJSONL(data []byte) (spans int, err error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var s spanLine
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return 0, fmt.Errorf("span jsonl: line %d: %v", line, err)
		}
		if s.Kind == "req" {
			if s.ID == nil || s.Shard == nil || s.Outcome == "" || s.Start == nil || s.End == nil {
				return 0, fmt.Errorf("span jsonl: line %d: req span missing id/shard/outcome/start/end", line)
			}
		} else if s.ID == nil || s.Node == nil || s.Class == "" || s.Start == nil || s.End == nil {
			return 0, fmt.Errorf("span jsonl: line %d: missing id/node/class/start/end", line)
		}
		if *s.End < *s.Start {
			return 0, fmt.Errorf("span jsonl: line %d: end %d before start %d", line, *s.End, *s.Start)
		}
		for _, st := range s.Stages {
			if st.Stage == "" || st.Start == nil || st.End == nil {
				return 0, fmt.Errorf("span jsonl: line %d: malformed stage", line)
			}
			if *st.Start < *s.Start || *st.End > *s.End {
				return 0, fmt.Errorf("span jsonl: line %d: stage %s [%d,%d] outside span [%d,%d]",
					line, st.Stage, *st.Start, *st.End, *s.Start, *s.End)
			}
		}
		spans++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("span jsonl: %v", err)
	}
	return spans, nil
}
