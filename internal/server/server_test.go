package server_test

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/server"
	"costcache/internal/wire"
)

func newEngine(reg *obs.Registry, ns string) *engine.Engine {
	return engine.New(engine.Config{
		Shards: 4, Sets: 256, Ways: 4,
		Policy:    func() replacement.Policy { return replacement.NewLRU() },
		Registry:  reg,
		Namespace: ns,
	})
}

// startServer boots a server on an ephemeral port and tears it down with
// the test.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func dial(t *testing.T, s *server.Server, conns int) *client.Client {
	t.Helper()
	c, err := client.Dial(client.Config{Addr: s.Addr().String(), Conns: conns, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("client.Dial: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestRoundTrips(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "a")
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{{Name: "a", Engine: eng}},
		Registry:   reg,
	})
	c := dial(t, s, 1)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// Miss, then hit, via GETORLOAD against the echo backend.
	r, err := c.GetOrLoad("a", 42, 7)
	if err != nil {
		t.Fatalf("getorload: %v", err)
	}
	if r.Hit || r.Coalesced || r.Stale || r.Charged != 7 {
		t.Fatalf("first getorload: %+v, want leader miss charging 7", r)
	}
	if got := binary.BigEndian.Uint64(r.Value); got != 42 {
		t.Fatalf("echo value = %d, want 42", got)
	}
	r, err = c.GetOrLoad("a", 42, 7)
	if err != nil || !r.Hit || r.Charged != 0 {
		t.Fatalf("second getorload: %+v err=%v, want hit charging 0", r, err)
	}

	// GET sees the loaded value; a cold key misses.
	v, ok, err := c.Get("a", 42)
	if err != nil || !ok || binary.BigEndian.Uint64(v) != 42 {
		t.Fatalf("get hot: v=%v ok=%v err=%v", v, ok, err)
	}
	if _, ok, err := c.Get("a", 999); err != nil || ok {
		t.Fatalf("get cold: ok=%v err=%v, want miss", ok, err)
	}

	// SET installs an arbitrary value.
	if err := c.Set("a", 7, 3, []byte("hello")); err != nil {
		t.Fatalf("set: %v", err)
	}
	v, ok, _ = c.Get("a", 7)
	if !ok || string(v) != "hello" {
		t.Fatalf("get after set: v=%q ok=%v", v, ok)
	}

	st, err := c.Stats("a")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Namespace != "a" || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats: %+v, want nonzero hits and misses", st)
	}
	if st.ConnsAccepted == 0 || st.FramesIn == 0 || st.FramesOut == 0 {
		t.Fatalf("stats serving tier: %+v, want nonzero conn/frame counters", st)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{
			{Name: "a", Engine: newEngine(reg, "a")},
			{Name: "b", Engine: newEngine(reg, "b")},
		},
		Registry: reg,
	})
	c := dial(t, s, 1)

	if err := c.Set("a", 1, 1, []byte("in-a")); err != nil {
		t.Fatalf("set a: %v", err)
	}
	if _, ok, _ := c.Get("b", 1); ok {
		t.Fatal("key set in namespace a visible in b")
	}
	if _, ok, _ := c.Get("a", 1); !ok {
		t.Fatal("key set in namespace a not visible in a")
	}

	_, _, err := c.Get("nope", 1)
	var perr *client.Error
	if !errors.As(err, &perr) || perr.Code != wire.ErrCodeNamespace {
		t.Fatalf("unknown namespace: err=%v, want ErrCodeNamespace", err)
	}

	// Per-namespace engine series exist in the shared registry.
	snap := reg.Snapshot()
	var sawA, sawB bool
	for name := range snap.Counters {
		switch name {
		case `engine_hits{ns="a",shard="0"}`:
			sawA = true
		case `engine_hits{ns="b",shard="0"}`:
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Fatalf("registry missing per-namespace engine series (a=%v b=%v)", sawA, sawB)
	}
}

// TestPipelinedCoalescing drives concurrent GETORLOADs for one key through
// one client and asserts the engine coalesced them: the backend ran once,
// everyone got the value, and hits+misses+coalesced equals the op count.
func TestPipelinedCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "")
	var loads atomic.Int64
	backend := func(key uint64, cost replacement.Cost) ([]byte, error) {
		loads.Add(1)
		time.Sleep(50 * time.Millisecond)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], key)
		return b[:], nil
	}
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{{Name: "a", Engine: eng, Backend: backend}},
		Registry:   reg,
	})
	c := dial(t, s, 1)

	const waiters = 16
	var wg sync.WaitGroup
	var coalesced atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.GetOrLoad("a", 5, 9)
			if err != nil {
				t.Errorf("getorload: %v", err)
				return
			}
			if r.Coalesced {
				coalesced.Add(1)
			}
			if binary.BigEndian.Uint64(r.Value) != 5 {
				t.Errorf("bad value %v", r.Value)
			}
		}()
	}
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("backend ran %d times, want 1 (coalescing broken)", n)
	}
	if coalesced.Load() == 0 {
		t.Fatal("no request reported FlagCoalesced")
	}
	st := eng.Stats()
	if st.Hits+st.Misses+st.Coalesced != waiters {
		t.Fatalf("hits(%d)+misses(%d)+coalesced(%d) != %d ops",
			st.Hits, st.Misses, st.Coalesced, waiters)
	}
}

func TestTTLExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "")
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{{Name: "a", Engine: eng, TTL: 30 * time.Millisecond}},
		Registry:   reg,
	})
	c := dial(t, s, 1)

	if _, err := c.GetOrLoad("a", 1, 2); err != nil {
		t.Fatalf("load: %v", err)
	}
	if r, _ := c.GetOrLoad("a", 1, 2); !r.Hit {
		t.Fatalf("within TTL: %+v, want hit", r)
	}
	time.Sleep(50 * time.Millisecond)
	r, err := c.GetOrLoad("a", 1, 2)
	if err != nil {
		t.Fatalf("after TTL: %v", err)
	}
	if r.Hit {
		t.Fatal("hit after TTL lapsed, want reload")
	}
	st, _ := c.Stats("a")
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	// The wire-visible op stream still reconciles: 3 getorloads, no waiter.
	es := eng.Stats()
	if es.Hits+es.Misses+es.Coalesced != 3 {
		t.Fatalf("ops = %d, want 3", es.Hits+es.Misses+es.Coalesced)
	}
}

// TestAdmissionShed saturates a MaxInflight=1 server whose backend is slow
// and asserts overflow requests come back as SHED errors within the queue
// deadline rather than piling up.
func TestAdmissionShed(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "")
	backend := func(key uint64, cost replacement.Cost) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return []byte("x"), nil
	}
	s := startServer(t, server.Config{
		Namespaces:    []*server.Namespace{{Name: "a", Engine: eng, Backend: backend}},
		Registry:      reg,
		MaxInflight:   1,
		QueueDeadline: 10 * time.Millisecond,
	})
	c := dial(t, s, 4)

	const n = 8
	var wg sync.WaitGroup
	var shed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			_, err := c.GetOrLoad("a", key, 1)
			var perr *client.Error
			if errors.As(err, &perr) && perr.Code == wire.ErrCodeShed {
				shed.Add(1)
			}
		}(uint64(i)) // distinct keys: no coalescing, all contend for the slot
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("no request was shed at MaxInflight=1 with a 200ms backend")
	}
	st, _ := c.Stats("a")
	if st.ServerShed != shed.Load() {
		t.Fatalf("server_shed=%d, clients saw %d", st.ServerShed, shed.Load())
	}
}

// TestShedImmediateWhenFull pins the fail-fast variant: a negative
// QueueDeadline (cacheserved's -queue.deadline 0) sheds the moment no load
// slot is free instead of queueing at all.
func TestShedImmediateWhenFull(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "")
	started := make(chan struct{})
	release := make(chan struct{})
	backend := func(key uint64, cost replacement.Cost) ([]byte, error) {
		close(started) // the only slot is now held
		<-release
		return []byte("x"), nil
	}
	s := startServer(t, server.Config{
		Namespaces:    []*server.Namespace{{Name: "a", Engine: eng, Backend: backend}},
		Registry:      reg,
		MaxInflight:   1,
		QueueDeadline: -1,
	})
	c := dial(t, s, 2)

	// Occupy the only slot with a load that blocks until released.
	first, err := c.StartGetOrLoad("a", 1, 1)
	if err != nil {
		t.Fatalf("start first: %v", err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("slot holder never reached the backend")
	}
	// With the slot held, a second distinct key must shed at once.
	_, err = c.GetOrLoad("a", 2, 1)
	var perr *client.Error
	if !errors.As(err, &perr) || perr.Code != wire.ErrCodeShed {
		t.Fatalf("got %v, want an immediate %s error", err, wire.ErrCodeName(wire.ErrCodeShed))
	}
	close(release)
	if _, err := first.Wait(); err != nil {
		t.Fatalf("slot holder: %v", err)
	}
}

func TestMaxConns(t *testing.T) {
	reg := obs.NewRegistry()
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{{Name: "a", Engine: newEngine(reg, "")}},
		Registry:   reg,
		MaxConns:   1,
	})
	c1 := dial(t, s, 1)
	if err := c1.Ping(); err != nil {
		t.Fatalf("first conn ping: %v", err)
	}
	// The second connection is closed on accept; the client surfaces a
	// dial-time or first-request failure.
	c2, err := client.Dial(client.Config{Addr: s.Addr().String(), Conns: 1, Timeout: time.Second})
	if err == nil {
		defer c2.Close()
		if err := c2.Ping(); err == nil {
			t.Fatal("second connection served despite MaxConns=1")
		}
	}
}

// TestDrainFinishesInflight starts a slow load, drains mid-flight, and
// asserts the in-flight response is still delivered while new work is
// refused with DRAINING.
func TestDrainFinishesInflight(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "")
	release := make(chan struct{})
	backend := func(key uint64, cost replacement.Cost) ([]byte, error) {
		<-release
		return []byte("slow"), nil
	}
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{{Name: "a", Engine: eng, Backend: backend}},
		Registry:   reg,
	})
	c := dial(t, s, 1)

	type res struct {
		r   client.Result
		err error
	}
	got := make(chan res, 1)
	go func() {
		r, err := c.GetOrLoad("a", 1, 1)
		got <- res{r, err}
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the backend

	drained := make(chan bool, 1)
	go func() { drained <- s.Drain(5 * time.Second) }()
	time.Sleep(30 * time.Millisecond)
	release <- struct{}{}

	r := <-got
	if r.err != nil || string(r.r.Value) != "slow" {
		t.Fatalf("in-flight request during drain: %+v err=%v, want value", r.r, r.err)
	}
	if clean := <-drained; !clean {
		t.Fatal("drain reported dirty despite all work finishing")
	}
	// New connections are refused after drain.
	if _, err := client.Dial(client.Config{Addr: s.Addr().String(), Conns: 1, Timeout: time.Second}); err == nil {
		// Accept may race ln.Close; a successful dial must still fail to serve.
		t.Log("post-drain dial succeeded; acceptable only if requests fail")
	}
}

func TestBadVersionRejected(t *testing.T) {
	reg := obs.NewRegistry()
	s := startServer(t, server.Config{
		Namespaces: []*server.Namespace{{Name: "a", Engine: newEngine(reg, "")}},
	})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	f := wire.Frame{Version: 99, Op: wire.OpPing, ID: 1}
	if _, err := nc.Write(wire.AppendFrame(nil, &f)); err != nil {
		t.Fatalf("write: %v", err)
	}
	var resp wire.Frame
	if err := wire.ReadFrame(nc, 0, &resp); err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.Flags&wire.FlagError == 0 {
		t.Fatalf("response flags %#x, want FlagError", resp.Flags)
	}
	code, _, _ := wire.ParseError(resp.Payload)
	if code != wire.ErrCodeBadRequest {
		t.Fatalf("error code %d, want bad-request", code)
	}
}

func TestConfigValidation(t *testing.T) {
	reg := obs.NewRegistry()
	eng := newEngine(reg, "")
	cases := []server.Config{
		{},
		{Namespaces: []*server.Namespace{{Name: "", Engine: eng}}},
		{Namespaces: []*server.Namespace{{Name: "a"}}},
		{Namespaces: []*server.Namespace{{Name: "a", Engine: eng}, {Name: "a", Engine: eng}}},
	}
	for i, cfg := range cases {
		if _, err := server.New(cfg); err == nil {
			t.Errorf("case %d: config accepted, want error", i)
		}
	}
}
