package replacement

import "testing"

func TestByName(t *testing.T) {
	for _, name := range Names() {
		f, ok := ByName(name)
		if !ok {
			t.Errorf("ByName(%q) not found", name)
			continue
		}
		if got := f().Name(); got != name {
			t.Errorf("ByName(%q) built %q", name, got)
		}
	}
}

func TestByNameAliasVariants(t *testing.T) {
	f, ok := ByName("DCL-a8")
	if !ok || f().Name() != "DCL-a8" {
		t.Fatal("DCL-a8 must parse")
	}
	f, ok = ByName("ACL-a2")
	if !ok || f().Name() != "ACL-a2" {
		t.Fatal("ACL-a2 must parse")
	}
}

func TestByNameRejectsGarbage(t *testing.T) {
	for _, name := range []string{"", "SRRIP", "DCL-a", "DCL-a0", "DCL-a99", "ACL-axy", "dcl"} {
		if _, ok := ByName(name); ok {
			t.Errorf("ByName(%q) should fail", name)
		}
	}
}
