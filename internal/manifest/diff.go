package manifest

import (
	"math"
	"sort"
	"strings"
)

// Verdict classifies one metric's movement between two manifests.
type Verdict string

// Verdicts, from benign to actionable.
const (
	// VerdictOK: within tolerance.
	VerdictOK Verdict = "ok"
	// VerdictImproved: moved beyond tolerance in the good direction.
	VerdictImproved Verdict = "improved"
	// VerdictRegressed: moved beyond tolerance in the bad direction.
	VerdictRegressed Verdict = "regressed"
	// VerdictAdded / VerdictRemoved: present in only one manifest.
	VerdictAdded   Verdict = "added"
	VerdictRemoved Verdict = "removed"
)

// DiffEntry is one metric's comparison.
type DiffEntry struct {
	Name     string
	Old, New float64
	// DeltaPct is the relative change in percent (0 when Old is 0).
	DeltaPct float64
	Verdict  Verdict
}

// HigherIsBetter guesses a metric's good direction from its name: savings,
// reductions, hit and success counts improve upward; everything else
// (latencies, misses, execution time, queueing) improves downward.
func HigherIsBetter(name string) bool {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	for _, good := range []string{"savings", "reduction", "hits", "hit_", "success"} {
		if strings.Contains(base, good) {
			return true
		}
	}
	return false
}

// Diff compares two manifests' metrics. tolPct is the relative drift (in
// percent) still classified as ok. Entries are sorted: regressions first,
// then improvements, added/removed, and ok, each alphabetically.
func Diff(prev, cur *Manifest, tolPct float64) []DiffEntry {
	var out []DiffEntry
	for name, ov := range prev.Metrics {
		nv, ok := cur.Metrics[name]
		if !ok {
			out = append(out, DiffEntry{Name: name, Old: ov, Verdict: VerdictRemoved})
			continue
		}
		e := DiffEntry{Name: name, Old: ov, New: nv, Verdict: VerdictOK}
		if ov != 0 {
			e.DeltaPct = (nv - ov) / math.Abs(ov) * 100
		} else if nv != 0 {
			e.DeltaPct = math.Inf(1)
			if nv < 0 {
				e.DeltaPct = math.Inf(-1)
			}
		}
		if math.Abs(e.DeltaPct) > tolPct {
			up := nv > ov
			if up == HigherIsBetter(name) {
				e.Verdict = VerdictImproved
			} else {
				e.Verdict = VerdictRegressed
			}
		}
		out = append(out, e)
	}
	for name, nv := range cur.Metrics {
		if _, ok := prev.Metrics[name]; !ok {
			out = append(out, DiffEntry{Name: name, New: nv, Verdict: VerdictAdded})
		}
	}
	rank := map[Verdict]int{
		VerdictRegressed: 0, VerdictImproved: 1,
		VerdictAdded: 2, VerdictRemoved: 2, VerdictOK: 3,
	}
	sort.Slice(out, func(i, j int) bool {
		if ri, rj := rank[out[i].Verdict], rank[out[j].Verdict]; ri != rj {
			return ri < rj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
