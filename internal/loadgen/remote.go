package loadgen

import (
	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
	"costcache/internal/wire"
)

// RemoteTarget drives a ring of cacheserved nodes instead of an in-process
// engine: each request becomes a GETORLOAD frame declaring the key's
// predicted miss cost, so the server charges the identical cost stream the
// in-process loader would have — a single-worker closed-loop remote run is
// counter-for-counter identical to the same config run in-process.
//
// When a tracer is configured, every request is offered as a span whose
// stages tile the round trip: net_write (request encode + socket write) and
// net_read (response wait — which includes the server's entire service
// time). The span's outcome and charged cost come from the response flags,
// so stride-1 sampled remote runs reconcile outcome counts and cost sums
// against the server's counter deltas exactly like in-process runs do.
type RemoteTarget struct {
	ring   *client.Ring
	ns     string
	tracer *reqspan.Tracer
}

// NewRemoteTarget builds a remote target over ring, issuing every request
// against namespace ns. tracer may be nil.
func NewRemoteTarget(ring *client.Ring, ns string, tracer *reqspan.Tracer) *RemoteTarget {
	return &RemoteTarget{ring: ring, ns: ns, tracer: tracer}
}

// GetOrLoad implements Target. The load closure is ignored: the server's
// backend produces values.
func (t *RemoteTarget) GetOrLoad(key uint64, c replacement.Cost, _ engine.Loader) (bool, error) {
	// The span's shard slot carries the ring node, so hot-shard analytics
	// become hot-node analytics on remote runs.
	sp := t.tracer.Begin(reqspan.OpGetOrLoad, t.ring.Pick(key), key)
	p, node, err := t.ring.StartGetOrLoad(t.ns, key, int64(c))
	sp.Mark(reqspan.StageNetWrite)
	if err != nil {
		t.tracer.Finish(sp, reqspan.OutcomeError)
		return false, err
	}
	res, err := p.Wait()
	sp.Mark(reqspan.StageNetRead)
	t.ring.Report(node, err)
	if err != nil {
		t.tracer.Finish(sp, reqspan.OutcomeError)
		return false, err
	}
	sp.AddCost(res.Charged)
	switch {
	case res.Hit:
		t.tracer.Finish(sp, reqspan.OutcomeHit)
	case res.Coalesced:
		t.tracer.Finish(sp, reqspan.OutcomeCoalesced)
	default:
		t.tracer.Finish(sp, reqspan.OutcomeMiss)
	}
	return res.Stale, nil
}

// Stats implements Target: the ring-wide sum of every node's engine
// counters for the namespace, mapped into the engine.Stats shape the
// manifest schema shares.
func (t *RemoteTarget) Stats() (engine.Stats, error) {
	st, err := t.ring.Stats(t.ns)
	if err != nil {
		return engine.Stats{}, err
	}
	return statsFromWire(st), nil
}

// statsFromWire maps the wire counter set onto engine.Stats.
func statsFromWire(st wire.Stats) engine.Stats {
	return engine.Stats{
		Hits:         st.Hits,
		Misses:       st.Misses,
		Coalesced:    st.Coalesced,
		Evictions:    st.Evictions,
		CostPaid:     st.CostPaid,
		LockWaitNs:   st.LockWaitNs,
		ShadowCost:   st.ShadowCost,
		LoadTimeouts: st.LoadTimeouts,
		LoadRetries:  st.LoadRetries,
		Shed:         st.Shed,
		StaleServed:  st.StaleServed,
	}
}
