package workload

import (
	"reflect"
	"testing"

	"costcache/internal/trace"
)

// small returns scaled-down configs so tests stay fast.
func smallBarnes() Barnes {
	w := DefaultBarnes()
	w.Bodies, w.TreeNodes, w.Iterations = 1024, 512, 2
	return w
}

// smallLU keeps nb = N/B at twice the processor count so every processor
// owns interior block columns and performs remote panel reads.
func smallLU() LU { return LU{N: 256, B: 16, Procs: 8, Seed: 1} }

func smallOcean() Ocean { return Ocean{N: 130, Levels: 2, Iterations: 2, Procs: 16, Seed: 3} }

func smallRaytrace() Raytrace {
	w := DefaultRaytrace()
	w.SceneBlocks, w.RaysPerProc = 4096, 800
	return w
}

func smallAll() []Generator {
	return []Generator{smallBarnes(), smallLU(), smallOcean(), smallRaytrace()}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range smallAll() {
		a := g.Generate()
		b := g.Generate()
		if !reflect.DeepEqual(a.Refs, b.Refs) {
			t.Errorf("%s: two generations differ", g.Name())
		}
	}
}

func TestGeneratorsBasicShape(t *testing.T) {
	wantProcs := map[string]int{"Barnes": 8, "LU": 8, "Ocean": 16, "Raytrace": 8}
	for _, g := range smallAll() {
		tr := g.Generate()
		if tr.Name != g.Name() {
			t.Errorf("%s: trace name %q", g.Name(), tr.Name)
		}
		if tr.NumProcs != wantProcs[g.Name()] {
			t.Errorf("%s: procs = %d, want %d", g.Name(), tr.NumProcs, wantProcs[g.Name()])
		}
		st := tr.Summarize(BlockBytes)
		if st.Refs < 50000 {
			t.Errorf("%s: only %d refs", g.Name(), st.Refs)
		}
		if st.Writes == 0 || st.Reads == 0 {
			t.Errorf("%s: reads=%d writes=%d", g.Name(), st.Reads, st.Writes)
		}
		// Every processor participates.
		for p, n := range st.PerProc {
			if n == 0 {
				t.Errorf("%s: proc %d issued no refs", g.Name(), p)
			}
		}
		// Footprint must far exceed the 16KB L2 under study.
		if st.FootprintBytes < 128<<10 {
			t.Errorf("%s: footprint %d bytes too small", g.Name(), st.FootprintBytes)
		}
	}
}

// Remote-access fractions under first-touch must land in the qualitative
// bands of Table 1: Barnes high (~45%), Raytrace moderate (~30%), LU lower
// (~20%), Ocean lowest (<10%).
func TestRemoteFractionsMatchTable1Bands(t *testing.T) {
	type band struct{ lo, hi float64 }
	bands := map[string]band{
		"Barnes":   {0.30, 0.60},
		"LU":       {0.10, 0.30},
		"Ocean":    {0.01, 0.10},
		"Raytrace": {0.18, 0.42},
	}
	got := map[string]float64{}
	for _, g := range smallAll() {
		tr := g.Generate()
		homes := FirstTouchHomes(tr, BlockBytes)
		rf := tr.RemoteFraction(0, BlockBytes, HomeFunc(homes, 0))
		got[g.Name()] = rf
		b := bands[g.Name()]
		if rf < b.lo || rf > b.hi {
			t.Errorf("%s: remote fraction %.3f outside [%.2f,%.2f]", g.Name(), rf, b.lo, b.hi)
		}
	}
	// Ordering property from Table 1: Barnes > Raytrace > LU > Ocean.
	if !(got["Barnes"] > got["Raytrace"] && got["Raytrace"] > got["LU"] && got["LU"] > got["Ocean"]) {
		t.Errorf("remote fraction ordering violated: %v", got)
	}
}

func TestFirstTouchHomesCoverAllBlocks(t *testing.T) {
	tr := smallLU().Generate()
	homes := FirstTouchHomes(tr, BlockBytes)
	for _, r := range tr.Refs {
		if _, ok := homes[r.Addr/BlockBytes]; !ok {
			t.Fatalf("block %#x has no home", r.Addr/BlockBytes)
		}
	}
	// LU panels are written by their owners first: the home of a block
	// must equal the column owner for most matrix blocks.
	f := HomeFunc(homes, 0)
	if f(1<<40) != 0 {
		t.Fatal("default home must apply to untouched blocks")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// In LU, no interior-phase reference of step k may precede the diagonal
	// factorization of step k. We verify a weaker, robust form: the
	// initialization writes of a block column all precede any read of it.
	tr := smallLU().Generate()
	firstRead := map[uint64]int{}
	lastInitWrite := map[uint64]int{}
	initDone := false
	for i, r := range tr.Refs {
		b := r.Addr / BlockBytes
		if r.Op == trace.Write && !initDone {
			lastInitWrite[b] = i
		}
		if r.Op == trace.Read {
			initDone = true
			if _, ok := firstRead[b]; !ok {
				firstRead[b] = i
			}
		}
	}
	for b, w := range lastInitWrite {
		if fr, ok := firstRead[b]; ok && fr < w {
			t.Fatalf("block %#x read at %d before its init write at %d", b, fr, w)
		}
	}
}

func TestSampleViewInvalidationTraffic(t *testing.T) {
	// Ocean boundary rows are written by neighbours: the sample view of
	// proc 0 must contain remote writes.
	tr := smallOcean().Generate()
	view := tr.SampleView(0)
	remote := 0
	for _, r := range view {
		if r.Remote {
			remote++
		}
	}
	if remote == 0 {
		t.Fatal("no remote writes in sample view")
	}
	if remote == len(view) {
		t.Fatal("sample view has no local refs")
	}
}

func TestSynthetic(t *testing.T) {
	w := Synthetic{Blocks: 256, RefsPerProc: 5000, WriteFrac: 0.3, SharedFrac: 0.7, ZipfS: 1.2, Procs: 4, Seed: 9}
	tr := w.Generate()
	st := tr.Summarize(BlockBytes)
	if st.Refs != 20000 {
		t.Fatalf("refs = %d, want 20000", st.Refs)
	}
	wf := float64(st.Writes) / float64(st.Refs)
	if wf < 0.25 || wf > 0.35 {
		t.Fatalf("write fraction %.3f, want ~0.3", wf)
	}
	// Uniform variant.
	w.ZipfS = 0
	if w.Generate().Summarize(BlockBytes).Refs != 20000 {
		t.Fatal("uniform variant broken")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Barnes", "LU", "Ocean", "Raytrace"} {
		g, ok := ByName(name)
		if !ok || g.Name() != name {
			t.Errorf("ByName(%q) = %v,%v", name, g, ok)
		}
	}
	if _, ok := ByName("SPECjbb"); ok {
		t.Error("ByName must reject unknown benchmarks")
	}
	if len(Defaults()) != 4 {
		t.Error("Defaults must return the four Table 1 benchmarks")
	}
}

func TestLUBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LU{N: 100, B: 16, Procs: 8}.Generate()
}

func TestProgramMatchesTrace(t *testing.T) {
	for _, g := range smallAll() {
		prog, ok := ProgramOf(g)
		if !ok {
			t.Fatalf("%s: no program form", g.Name())
		}
		tr := g.Generate()
		if prog.TotalRefs() != len(tr.Refs) {
			t.Errorf("%s: program refs %d != trace refs %d", g.Name(), prog.TotalRefs(), len(tr.Refs))
		}
		if prog.Procs != tr.NumProcs || prog.Name != tr.Name {
			t.Errorf("%s: header mismatch", g.Name())
		}
		// Per-processor reference sequences must be identical in both forms
		// (the trace only interleaves, never reorders one processor).
		perProcTrace := make([][]trace.Ref, prog.Procs)
		for _, r := range tr.Refs {
			perProcTrace[r.Proc] = append(perProcTrace[r.Proc], r)
		}
		perProcProg := make([][]trace.Ref, prog.Procs)
		for _, ph := range prog.Phases {
			for p, refs := range ph {
				perProcProg[p] = append(perProcProg[p], refs...)
			}
		}
		for p := range perProcTrace {
			if !reflect.DeepEqual(perProcTrace[p], perProcProg[p]) {
				t.Errorf("%s: proc %d sequences differ", g.Name(), p)
			}
		}
	}
}

func TestProgramHasMultiplePhases(t *testing.T) {
	prog := smallLU().Program()
	if len(prog.Phases) < 4 {
		t.Fatalf("LU program has %d phases, want several (barriers)", len(prog.Phases))
	}
}

func TestExtraBenchmarks(t *testing.T) {
	fft := FFT{N: 64, Sweeps: 2, Stages: 2, Procs: 8, Seed: 5}
	radix := Radix{KeysPerProc: 2048, Buckets: 256, Passes: 2, Procs: 8, Seed: 6}
	for _, g := range []Generator{fft, radix} {
		tr := g.Generate()
		if tr.Len() < 10000 {
			t.Errorf("%s: only %d refs", g.Name(), tr.Len())
		}
		if !reflect.DeepEqual(tr.Refs, g.Generate().Refs) {
			t.Errorf("%s: nondeterministic", g.Name())
		}
		homes := FirstTouchHomes(tr, BlockBytes)
		rf := tr.RemoteFraction(0, BlockBytes, HomeFunc(homes, 0))
		if rf <= 0.02 || rf >= 0.9 {
			t.Errorf("%s: remote fraction %.3f implausible", g.Name(), rf)
		}
		prog, ok := ProgramOf(g)
		if !ok || prog.TotalRefs() != tr.Len() {
			t.Errorf("%s: program form broken", g.Name())
		}
	}
	// Radix must be write-heavy relative to FFT (permutation writes).
	fw := writeFrac(fft.Generate())
	rw := writeFrac(radix.Generate())
	if rw <= fw {
		t.Errorf("Radix write fraction %.2f should exceed FFT's %.2f", rw, fw)
	}
}

func writeFrac(tr *trace.Trace) float64 {
	st := tr.Summarize(BlockBytes)
	return float64(st.Writes) / float64(st.Refs)
}

func TestByNameExtras(t *testing.T) {
	for _, name := range []string{"FFT", "Radix"} {
		g, ok := ByName(name)
		if !ok || g.Name() != name {
			t.Errorf("ByName(%q) broken", name)
		}
	}
}
