package main

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"costcache/internal/cost"
	"costcache/internal/costsim"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/obs/federate"
	"costcache/internal/obs/tsdb"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// observedPolicies are the policies the observability run traces; all of
// them implement replacement.Observable.
var observedPolicies = []struct {
	name string
	mk   replacement.Factory
}{
	{"LRU", func() replacement.Policy { return replacement.NewLRU() }},
	{"BCL", func() replacement.Policy { return replacement.NewBCL() }},
	{"DCL", func() replacement.Policy { return replacement.NewDCL() }},
	{"ACL", func() replacement.Policy { return replacement.NewACL() }},
}

// pickBench resolves the -bench flag to a generator (first default workload
// when empty), scaled down when -quick.
func pickBench(name string, quick bool) workload.Generator {
	gens := benchmarks(quick)
	if name == "" {
		return gens[0]
	}
	for _, g := range gens {
		if strings.EqualFold(g.Name(), name) {
			return g
		}
	}
	g, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "paper: unknown benchmark %q, using %s\n", name, gens[0].Name())
		return gens[0]
	}
	return g
}

func obsCostSource(view []trace.SampleRef, cfg costsim.Config) cost.Source {
	return costsim.CalibratedRandom(view, cfg.BlockBytes, 0.2,
		costsim.Ratio{Low: 1, High: 8, Label: "r=8"}, 42)
}

// obsSection is the -obs.trace run: trace every decision of the observed
// policies over one benchmark, reconcile the traced event counts against
// the cache counters, and report per-window interval statistics. With
// manifestPath set it also writes a run manifest carrying the published
// trace_events{policy,kind} counters and the decision-trace artifact path,
// so simulator runs join report -explain's decisions-only path.
func obsSection(traceFile string, gen workload.Generator, window int, manifestPath string) error {
	tr := gen.Generate()
	view := tr.SampleView(0)
	cfg := costsim.Default()
	src := obsCostSource(view, cfg)

	f, err := os.Create(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	tracer := obs.NewTracer(1 << 16)
	tracer.SetSink(bw)

	fmt.Printf("== Observability: decision trace of %s (%d refs, r=8 HAF=0.2) ==\n",
		gen.Name(), len(view))

	recon := tabulate.New("per-policy reconciliation vs. cache.Stats",
		"Policy", "L2 evictions", "traced evicts", "res. open", "res. success",
		"res. abandon", "ETD hits", "ACL enable", "match")
	var intervalTables []*tabulate.Table
	allMatch := true
	for _, pol := range observedPolicies {
		res := costsim.RunObserved(view, cfg, pol.mk(), src,
			tracer.Bind(pol.name), window, obs.Default)
		evicts := tracer.Count(pol.name, replacement.EvEvict)
		match := evicts == res.L2.Evictions
		allMatch = allMatch && match
		recon.AddF(pol.name, res.L2.Evictions, evicts,
			tracer.Count(pol.name, replacement.EvReserveOpen),
			tracer.Count(pol.name, replacement.EvReserveSuccess),
			tracer.Count(pol.name, replacement.EvReserveAbandon),
			tracer.Count(pol.name, replacement.EvETDHit),
			tracer.Count(pol.name, replacement.EvACLEnable),
			map[bool]string{true: "ok", false: "MISMATCH"}[match])
		intervalTables = append(intervalTables, costsim.WindowTable(
			fmt.Sprintf("%s: per-window statistics (window %d refs)", pol.name, window),
			res.Windows))
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tracer.Err(); err != nil {
		return err
	}
	tracer.PublishCounts(obs.Default)

	recon.Fprint(os.Stdout)
	fmt.Printf("\nwrote %d events to %s (ring retained last %d)\n\n",
		tracer.Total(), traceFile, len(tracer.Events()))
	for _, t := range intervalTables {
		t.Fprint(os.Stdout)
		fmt.Println()
	}
	if err := writeIntervalReport(intervalTables); err != nil {
		fmt.Fprintf(os.Stderr, "paper: interval report: %v\n", err)
	}
	if !allMatch {
		return fmt.Errorf("traced eviction counts do not reconcile with cache.Stats")
	}
	if manifestPath != "" {
		m := manifest.New("paper")
		m.SetConfig("section", "obs")
		m.SetConfig("bench", gen.Name())
		m.SetConfig("window", window)
		m.SetArtifact("decision_trace", traceFile)
		m.AddSnapshot(obs.Default.Snapshot()) // includes trace_events{policy,kind}
		if err := m.WriteFile(manifestPath); err != nil {
			return err
		}
		fmt.Printf("wrote manifest to %s\n", manifestPath)
	}
	return nil
}

// writeIntervalReport persists the window tables under results/.
func writeIntervalReport(tables []*tabulate.Table) error {
	path := filepath.Join("results", "obs_intervals.txt")
	if _, err := os.Stat("results"); err != nil {
		return nil // not running from the repo root; skip the artifact
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, t := range tables {
		if err := t.Fprint(f); err != nil {
			return err
		}
		fmt.Fprintln(f)
	}
	fmt.Printf("interval report written to %s\n", path)
	return nil
}

// writeBenchJSON times bare vs. observed simulation plus the telemetry
// store's sampling hot path (best of three each) and writes the figures as a
// run manifest under section obs-bench, so cmd/report validates and diffs
// BENCH_obs.json like every other archived baseline.
func writeBenchJSON(path string, gen workload.Generator) error {
	tr := gen.Generate()
	view := tr.SampleView(0)
	cfg := costsim.Default()
	src := obsCostSource(view, cfg)

	best := func(run func()) float64 {
		bestNs := int64(1) << 62
		for i := 0; i < 3; i++ {
			start := time.Now()
			run()
			if d := time.Since(start).Nanoseconds(); d < bestNs {
				bestNs = d
			}
		}
		return float64(bestNs) / float64(len(view))
	}

	// Bare runs the plain simulator; shadow adds the LRU shadow hierarchy but
	// no tracer; traced adds the decision tracer (ring only, no sink) and the
	// live metrics registry.
	bare := best(func() {
		costsim.Run(view, cfg, replacement.NewDCL(), src)
	})
	shadow := best(func() {
		costsim.RunObserved(view, cfg, replacement.NewDCL(), src, nil, 0, nil)
	})
	tracer := obs.NewTracer(1 << 16)
	reg := obs.NewRegistry()
	traced := best(func() {
		costsim.RunObserved(view, cfg, replacement.NewDCL(), src, tracer.Bind("DCL"), 0, reg)
	})
	sampleNs, sampleAllocs := benchTelemetrySample()
	fedNs, err := benchFederationScrape()
	if err != nil {
		return err
	}

	m := manifest.New("paper")
	m.SetConfig("section", "obs-bench")
	m.SetConfig("bench", gen.Name())
	m.SetConfig("policy", "DCL")
	m.SetMetric("obs_refs", float64(len(view)))
	m.SetMetric("obs_bare_ns_ref", bare)
	m.SetMetric("obs_shadow_ns_ref", shadow)
	m.SetMetric("obs_traced_ns_ref", traced)
	m.SetMetric("obs_shadow_overhead_pct", 100*(shadow-bare)/bare)
	m.SetMetric("obs_traced_overhead_pct", 100*(traced-bare)/bare)
	m.SetMetric("tsdb_sample_ns_op", sampleNs)
	m.SetMetric("tsdb_sample_allocs_op", sampleAllocs)
	m.SetMetric("fed_scrape_ns_node", fedNs)
	if err := m.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s: bare %.1f ns/ref, shadow +%.1f%%, traced +%.1f%%, tsdb sample %.0f ns/op (%g allocs), fed scrape %.0f ns/node\n",
		path, bare, 100*(shadow-bare)/bare, 100*(traced-bare)/bare, sampleNs, sampleAllocs, fedNs)
	return nil
}

// benchFederationScrape measures one federation round against a three-node
// fleet whose /metrics surfaces are shaped like live cacheserved processes
// (the benchTelemetrySample registry), and reports the steady-state cost per
// node-scrape: HTTP fetch + exposition parse + mirror apply + store sample +
// fleet rule eval, amortized. This is the number a deployment multiplies by
// fleet size to budget cachefed's scrape interval.
func benchFederationScrape() (nsPerNode float64, err error) {
	const nodes = 3
	var addrs []string
	for i := 0; i < nodes; i++ {
		reg := obs.NewRegistry()
		for shard := 0; shard < 8; shard++ {
			for _, name := range []string{"engine_hits", "engine_misses", "engine_coalesced",
				"engine_evictions", "engine_cost_paid", "engine_lock_wait_ns"} {
				reg.Counter(obs.Name(name, "shard", fmt.Sprint(shard))).Add(int64(shard + 1))
			}
		}
		srv := httptest.NewServer(obs.NewMux(reg))
		defer srv.Close()
		addrs = append(addrs, srv.URL)
	}
	fed, err := federate.New(federate.Config{Nodes: addrs, Step: time.Second})
	if err != nil {
		return 0, err
	}
	now := time.Unix(0, 0)
	scrape := func() {
		now = now.Add(time.Second)
		fed.ScrapeOnce(now)
	}
	scrape() // discovery: mirror counters created
	scrape() // settle

	const iters = 50
	bestNs := int64(1) << 62
	for i := 0; i < 3; i++ {
		start := time.Now()
		for j := 0; j < iters; j++ {
			scrape()
		}
		if d := time.Since(start).Nanoseconds(); d < bestNs {
			bestNs = d
		}
	}
	return float64(bestNs) / (iters * nodes), nil
}

// benchTelemetrySample measures the time-series store's steady-state Sample
// cost over a registry shaped like a live cachebench run: 8 shards × the six
// engine counters, the request-latency histogram and an in-flight gauge. The
// allocation figure must stay 0 — the zero-alloc gate in the tsdb tests pins
// it, this records it next to the timing so drift shows up in the diff.
func benchTelemetrySample() (nsPerOp, allocsPerOp float64) {
	reg := obs.NewRegistry()
	for shard := 0; shard < 8; shard++ {
		for _, name := range []string{"engine_hits", "engine_misses", "engine_coalesced",
			"engine_evictions", "engine_cost_paid", "engine_lock_wait_ns"} {
			reg.Counter(obs.Name(name, "shard", fmt.Sprint(shard))).Add(int64(shard + 1))
		}
	}
	reg.Histogram("request_latency_ns", obs.ExpBuckets(100, 2, 20)).Observe(12345)
	reg.Gauge("engine_in_flight").Set(3)

	store := tsdb.New(tsdb.Config{Registry: reg})
	now := time.Unix(0, 0)
	sample := func() {
		now = now.Add(time.Second)
		store.Sample(now)
	}
	sample() // discovery
	sample() // settle
	allocsPerOp = testing.AllocsPerRun(100, sample)

	const iters = 2000
	bestNs := int64(1) << 62
	for i := 0; i < 3; i++ {
		start := time.Now()
		for j := 0; j < iters; j++ {
			sample()
		}
		if d := time.Since(start).Nanoseconds(); d < bestNs {
			bestNs = d
		}
	}
	return float64(bestNs) / iters, allocsPerOp
}
