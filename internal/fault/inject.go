package fault

import (
	"fmt"

	"costcache/internal/obs"
)

// Mesh link indexing. The mesh reserves one directional link per (node,
// direction) pair and indexes them node*LinksPerNode + dir; the mesh package
// aliases these constants so the injector and the network agree on the
// encoding.
const (
	DirEast = iota
	DirWest
	DirNorth
	DirSouth
	LinksPerNode
)

// LinkIndex returns the mesh's index of node's outgoing link in direction d.
func LinkIndex(node, d int) int { return node*LinksPerNode + d }

func dirsOf(name string) []int {
	switch name {
	case "east":
		return []int{DirEast}
	case "west":
		return []int{DirWest}
	case "north":
		return []int{DirNorth}
	case "south":
		return []int{DirSouth}
	}
	return []int{DirEast, DirWest, DirNorth, DirSouth}
}

type slowWin struct {
	Window
	factor float64
}

type extraWin struct {
	Window
	extra int64
}

// Stats counts what the injector actually did to a run. All figures are in
// simulated nanoseconds or event counts.
type Stats struct {
	// Nacks counts messages bounced by an outage link; Retries the resends
	// (one per NACK); BackoffNs the total simulated time spent backing off.
	Nacks, Retries, BackoffNs int64
	// SlowedHops counts link traversals that paid a slowdown; SlowNs the
	// total extra occupancy those traversals paid.
	SlowedHops, SlowNs int64
	// DirHotNs and BankHotNs are the extra occupancy injected into hot
	// directory engines and memory banks.
	DirHotNs, BankHotNs int64
	// DegradedMisses counts L2 misses issued inside a node-degradation
	// window; NodeDegNs the total extra latency they paid.
	DegradedMisses, NodeDegNs int64
}

// Events returns the total count of injected fault events.
func (s Stats) Events() int64 {
	return s.Nacks + s.SlowedHops + s.DegradedMisses
}

// Metrics are the injector's observability instruments (nil when detached;
// faulted paths pay one nil check).
type Metrics struct {
	Nacks, Retries, BackoffNs *obs.Counter
	SlowedHops, SlowNs        *obs.Counter
	DirHotNs, BankHotNs       *obs.Counter
	DegradedMisses, NodeDegNs *obs.Counter
}

// Injector compiles a Plan into per-link and per-node window lists the
// timing models query on their hot paths. Queries are pure functions of
// (plan, time) except for the statistics counters, so runs stay
// deterministic. An injector belongs to one run; build a fresh one per run
// so counters do not mix.
type Injector struct {
	plan  *Plan
	retry Retry

	linkOut  [][]Window   // by link index
	linkSlow [][]slowWin  // by link index
	dirHot   [][]extraWin // by node
	bankHot  [][]extraWin // by node*banks+bank
	nodeDeg  [][]extraWin // by node
	banks    int

	st  Stats
	met *Metrics

	// Watchdog, when non-nil, is ticked from the NACK-retry loop so a
	// zero-progress retry storm is detected instead of spinning forever.
	Watchdog *Watchdog
}

// NewInjector compiles plan for a dim x dim mesh with banks memory banks per
// node. The plan must already be validated.
func NewInjector(plan *Plan, dim, banks int) *Injector {
	nodes := dim * dim
	in := &Injector{
		plan:     plan,
		retry:    plan.retry(),
		linkOut:  make([][]Window, nodes*LinksPerNode),
		linkSlow: make([][]slowWin, nodes*LinksPerNode),
		dirHot:   make([][]extraWin, nodes),
		bankHot:  make([][]extraWin, nodes*banks),
		nodeDeg:  make([][]extraWin, nodes),
		banks:    banks,
	}
	eachNode := func(sel int, f func(node int)) {
		if sel >= 0 {
			if sel < nodes {
				f(sel)
			}
			return
		}
		for n := 0; n < nodes; n++ {
			f(n)
		}
	}
	for _, lf := range plan.Links {
		lf := lf
		eachNode(lf.Node, func(node int) {
			for _, d := range dirsOf(lf.Dir) {
				l := LinkIndex(node, d)
				if lf.Outage {
					in.linkOut[l] = append(in.linkOut[l], lf.Window)
				} else {
					in.linkSlow[l] = append(in.linkSlow[l], slowWin{lf.Window, lf.Slowdown})
				}
			}
		})
	}
	for _, df := range plan.Dirs {
		df := df
		eachNode(df.Node, func(node int) {
			in.dirHot[node] = append(in.dirHot[node], extraWin{df.Window, df.ExtraNs})
		})
	}
	for _, bf := range plan.Banks {
		bf := bf
		eachNode(bf.Node, func(node int) {
			for b := 0; b < banks; b++ {
				if bf.Bank >= 0 && bf.Bank != b {
					continue
				}
				in.bankHot[node*banks+b] = append(in.bankHot[node*banks+b], extraWin{bf.Window, bf.ExtraNs})
			}
		})
	}
	for _, nf := range plan.Nodes {
		nf := nf
		eachNode(nf.Node, func(node int) {
			in.nodeDeg[node] = append(in.nodeDeg[node], extraWin{nf.Window, nf.ExtraNs})
		})
	}
	return in
}

// Plan returns the compiled plan.
func (in *Injector) Plan() *Plan { return in.plan }

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats { return in.st }

// AttachMetrics registers the injector's counters in reg under fault_nacks,
// fault_retries, fault_backoff_ns, fault_slowed_hops, fault_slow_ns,
// fault_dir_hot_ns, fault_bank_hot_ns, fault_degraded_misses and
// fault_node_degraded_ns. Pass nil to detach.
func (in *Injector) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		in.met = nil
		return
	}
	in.met = &Metrics{
		Nacks:          reg.Counter("fault_nacks"),
		Retries:        reg.Counter("fault_retries"),
		BackoffNs:      reg.Counter("fault_backoff_ns"),
		SlowedHops:     reg.Counter("fault_slowed_hops"),
		SlowNs:         reg.Counter("fault_slow_ns"),
		DirHotNs:       reg.Counter("fault_dir_hot_ns"),
		BankHotNs:      reg.Counter("fault_bank_hot_ns"),
		DegradedMisses: reg.Counter("fault_degraded_misses"),
		NodeDegNs:      reg.Counter("fault_node_degraded_ns"),
	}
}

// maxRetryAttempts bounds the NACK-retry loop for one message. Validated
// plans always clear (every outage window ends or has an idle gap), but
// overlapping periodic windows can tile simulated time completely; at the
// backoff cap this limit is hit after seconds of simulated time, far beyond
// any transient, so tripping it means the plan describes a permanent outage.
const maxRetryAttempts = 1 << 20

// LinkReady returns the first time at or after t the link accepts a flit
// train. While an outage window covers the attempt, the message is NACKed
// and the sender retries with exponential backoff (retry.BaseNs doubling up
// to retry.CapNs). If the outage never clears (overlapping windows covering
// all of simulated time), the loop panics with a Diagnostic instead of
// spinning forever.
func (in *Injector) LinkReady(l int, t int64) int64 {
	wins := in.linkOut[l]
	if len(wins) == 0 {
		return t
	}
	b := in.retry.BaseNs
	for attempts := 0; ; {
		down := false
		for _, w := range wins {
			if w.Active(t) {
				down = true
				break
			}
		}
		if !down {
			return t
		}
		if attempts++; attempts > maxRetryAttempts {
			panic(Diagnostic{
				SimNs:      t,
				Events:     in.st.Nacks,
				StuckTicks: int64(attempts),
				Detail:     fmt.Sprintf("fault: link %d outage never clears; message cannot make progress", l),
			})
		}
		in.st.Nacks++
		in.st.Retries++
		in.st.BackoffNs += b
		if in.met != nil {
			in.met.Nacks.Inc()
			in.met.Retries.Inc()
			in.met.BackoffNs.Add(b)
		}
		t += b
		if b < in.retry.CapNs {
			b *= 2
			if b > in.retry.CapNs {
				b = in.retry.CapNs
			}
		}
		in.Watchdog.Tick(t)
	}
}

// LinkOccupy returns the (possibly inflated) occupancy of a link traversal
// starting at t: the strongest active slowdown window multiplies the base
// occupancy.
func (in *Injector) LinkOccupy(l int, t, occupy int64) int64 {
	wins := in.linkSlow[l]
	if len(wins) == 0 {
		return occupy
	}
	factor := 1.0
	for _, w := range wins {
		if w.Active(t) && w.factor > factor {
			factor = w.factor
		}
	}
	if factor <= 1 {
		return occupy
	}
	slowed := int64(float64(occupy) * factor)
	in.st.SlowedHops++
	in.st.SlowNs += slowed - occupy
	if in.met != nil {
		in.met.SlowedHops.Inc()
		in.met.SlowNs.Add(slowed - occupy)
	}
	return slowed
}

func sumExtra(wins []extraWin, t int64) int64 {
	var extra int64
	for _, w := range wins {
		if w.Active(t) {
			extra += w.extra
		}
	}
	return extra
}

// DirExtra returns the extra occupancy a directory access at node pays at
// time t (hot-directory windows).
func (in *Injector) DirExtra(node int, t int64) int64 {
	extra := sumExtra(in.dirHot[node], t)
	if extra > 0 {
		in.st.DirHotNs += extra
		if in.met != nil {
			in.met.DirHotNs.Add(extra)
		}
	}
	return extra
}

// BankExtra returns the extra occupancy a memory-bank access at (node, bank)
// pays at time t (hot-bank windows).
func (in *Injector) BankExtra(node, bank int, t int64) int64 {
	extra := sumExtra(in.bankHot[node*in.banks+bank], t)
	if extra > 0 {
		in.st.BankHotNs += extra
		if in.met != nil {
			in.met.BankHotNs.Add(extra)
		}
	}
	return extra
}

// NodeExtra returns the extra latency an L2 miss issued by node at time t
// pays (whole-node degradation windows).
func (in *Injector) NodeExtra(node int, t int64) int64 {
	extra := sumExtra(in.nodeDeg[node], t)
	if extra > 0 {
		in.st.DegradedMisses++
		in.st.NodeDegNs += extra
		if in.met != nil {
			in.met.DegradedMisses.Inc()
			in.met.NodeDegNs.Add(extra)
		}
	}
	return extra
}
