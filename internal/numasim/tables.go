package numasim

import (
	"fmt"

	"costcache/internal/coherence"
	"costcache/internal/mesh"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

// LatencyMatrix accumulates Table 3: for consecutive misses to the same
// block by the same processor, indexed by the attributes (request type,
// memory state) of the last and the current miss, it records occurrence,
// how often the unloaded latency changed, and the average absolute latency
// difference when it did.
type LatencyMatrix struct {
	// CycleNs converts the stored ns differences to processor cycles.
	CycleNs int64
	// Count, Mismatch and AbsDiffNs are indexed
	// [lastType][lastState][curType][curState] with type 0 = read,
	// 1 = read-exclusive and states Uncached/Shared/Exclusive.
	Count     [2][3][2][3]int64
	Mismatch  [2][3][2][3]int64
	AbsDiffNs [2][3][2][3]int64
	// Pairs is the number of consecutive-miss pairs recorded.
	Pairs int64
}

func typeIdx(write bool) int {
	if write {
		return 1
	}
	return 0
}

func (m *LatencyMatrix) record(last, cur missRecord) {
	lt, ls := typeIdx(last.write), int(last.state)
	ct, cs := typeIdx(cur.write), int(cur.state)
	m.Count[lt][ls][ct][cs]++
	m.Pairs++
	if cur.unloaded != last.unloaded {
		m.Mismatch[lt][ls][ct][cs]++
		d := cur.unloaded - last.unloaded
		if d < 0 {
			d = -d
		}
		m.AbsDiffNs[lt][ls][ct][cs] += d
	}
}

// SameLatencyFraction returns the fraction of consecutive misses whose
// unloaded latency equals the previous one — the paper reports ~93%,
// justifying last-latency prediction.
func (m *LatencyMatrix) SameLatencyFraction() float64 {
	if m.Pairs == 0 {
		return 0
	}
	var mismatches int64
	for lt := 0; lt < 2; lt++ {
		for ls := 0; ls < 3; ls++ {
			for ct := 0; ct < 2; ct++ {
				for cs := 0; cs < 3; cs++ {
					mismatches += m.Mismatch[lt][ls][ct][cs]
				}
			}
		}
	}
	return 1 - float64(mismatches)/float64(m.Pairs)
}

// Table renders the matrix in the layout of Table 3: rows are the last
// miss's (type, state), column groups the current miss's type, columns the
// current state, with occurrence %, mismatch % and average latency error in
// cycles (over mismatched pairs).
func (m *LatencyMatrix) Table() *tabulate.Table {
	t := tabulate.New(
		"Table 3: latency variation between consecutive misses (occ% / mis% / err cyc)",
		"last", "rd:U", "rd:S", "rd:E", "rx:U", "rx:S", "rx:E")
	types := []string{"read", "rd-excl"}
	states := []string{"U", "S", "E"}
	for lt := 0; lt < 2; lt++ {
		for ls := 0; ls < 3; ls++ {
			row := []string{fmt.Sprintf("%s-%s", types[lt], states[ls])}
			for ct := 0; ct < 2; ct++ {
				for cs := 0; cs < 3; cs++ {
					c := m.Count[lt][ls][ct][cs]
					mm := m.Mismatch[lt][ls][ct][cs]
					occ := 100 * float64(c) / float64(max64(m.Pairs, 1))
					mis := 0.0
					errCyc := 0.0
					if c > 0 {
						mis = 100 * float64(mm) / float64(c)
					}
					if mm > 0 && m.CycleNs > 0 {
						errCyc = float64(m.AbsDiffNs[lt][ls][ct][cs]) / float64(mm) / float64(m.CycleNs)
					}
					row = append(row, fmt.Sprintf("%.1f/%.0f/%.1f", occ, mis, errCyc))
				}
			}
			t.Add(row...)
		}
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Table5Policies returns the policy factories of Table 5 in column order:
// GD, BCL, DCL, ACL, then DCL and ACL with 4-bit ETD tag aliasing.
func Table5Policies() []replacement.Factory {
	return []replacement.Factory{
		func() replacement.Policy { return replacement.NewGD() },
		func() replacement.Policy { return replacement.NewBCL() },
		func() replacement.Policy { return replacement.NewDCL() },
		func() replacement.Policy { return replacement.NewACL() },
		func() replacement.Policy { return replacement.NewDCLWith(replacement.Options{TagBits: 4}) },
		func() replacement.Policy { return replacement.NewACLWith(replacement.Options{TagBits: 4}) },
	}
}

// Table5Row is one benchmark's execution-time reductions at one clock.
type Table5Row struct {
	Bench    string
	ClockMHz int
	// LRUNs is the LRU baseline execution time.
	LRUNs int64
	// ReductionPct maps policy name to 100*(LRU-alg)/LRU.
	ReductionPct map[string]float64
	// Order lists policy names in run order.
	Order []string
}

// Table5 runs every benchmark under LRU and each policy at the given clock
// and reports execution-time reductions (Table 5 of the paper).
func Table5(progs []*workload.Program, clockMHz int, policies []replacement.Factory) []Table5Row {
	var rows []Table5Row
	for _, prog := range progs {
		cfg := DefaultConfig(nil)
		cfg.ClockMHz = clockMHz
		base := Run(prog, cfg.withPolicy(func() replacement.Policy { return replacement.NewLRU() }))
		row := Table5Row{
			Bench: prog.Name, ClockMHz: clockMHz, LRUNs: base.ExecNs,
			ReductionPct: map[string]float64{},
		}
		for _, f := range policies {
			r := Run(prog, cfg.withPolicy(f))
			row.ReductionPct[r.Policy] = 100 * float64(base.ExecNs-r.ExecNs) / float64(base.ExecNs)
			row.Order = append(row.Order, r.Policy)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3 runs the benchmark programs under LRU on the protocol *without*
// replacement hints (as in the paper's Table 3) and returns the merged
// consecutive-miss latency matrix.
func Table3(progs []*workload.Program, clockMHz int) *LatencyMatrix {
	merged := &LatencyMatrix{}
	for _, prog := range progs {
		cfg := DefaultConfig(func() replacement.Policy { return replacement.NewLRU() })
		cfg.ClockMHz = clockMHz
		cfg.Protocol.Hints = false
		cfg.CollectTable3 = true
		r := Run(prog, cfg)
		merged.CycleNs = r.Table3.CycleNs
		merged.Pairs += r.Table3.Pairs
		for lt := 0; lt < 2; lt++ {
			for ls := 0; ls < 3; ls++ {
				for ct := 0; ct < 2; ct++ {
					for cs := 0; cs < 3; cs++ {
						merged.Count[lt][ls][ct][cs] += r.Table3.Count[lt][ls][ct][cs]
						merged.Mismatch[lt][ls][ct][cs] += r.Table3.Mismatch[lt][ls][ct][cs]
						merged.AbsDiffNs[lt][ls][ct][cs] += r.Table3.AbsDiffNs[lt][ls][ct][cs]
					}
				}
			}
		}
	}
	return merged
}

// CalibrationLatencies returns the unloaded latencies of the three Table 4
// reference transactions, including the requester's L1+L2 lookup: a local
// clean read, a one-hop remote clean read, and a remote read of a block
// dirty in a third node (minimum-distance placement).
func CalibrationLatencies(cfg Config) (localClean, remoteClean, remoteDirty int64) {
	cyc := cfg.cycleNs()
	lookup := cyc + 6*cyc

	mk := func(home int) *coherence.Machine {
		return coherence.New(cfg.Protocol, mesh.New(cfg.Net), func(uint64) int { return home })
	}
	m := mk(0)
	localClean = m.Read(0, 1, 0).Unloaded + lookup

	m = mk(1)
	remoteClean = m.Read(0, 1, 0).Unloaded + lookup

	m = mk(1)
	m.Write(5, 1, 0) // node 5 dirties the block homed at node 1
	remoteDirty = m.Read(0, 1, 10000).Unloaded + lookup
	return localClean, remoteClean, remoteDirty
}

// ProgramsFor builds the Program form of the default Table 1 benchmarks.
func ProgramsFor(gens []workload.Generator) []*workload.Program {
	var progs []*workload.Program
	for _, g := range gens {
		if p, ok := workload.ProgramOf(g); ok {
			progs = append(progs, p)
		}
	}
	return progs
}
