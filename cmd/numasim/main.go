// Command numasim runs the execution-driven CC-NUMA simulation of Section 4
// on one benchmark and prints execution time and memory behaviour under a
// chosen L2 replacement policy, with the LRU baseline for comparison.
//
// Usage:
//
//	numasim -bench Barnes -policy DCL [-mhz 500|1000] [-nohints] [-table3] [-quick]
//	numasim -bench Barnes -policy DCL -span.trace trace.json -span.jsonl spans.jsonl
//	numasim -bench Barnes -policy DCL -manifest results/manifest.json
//
// -span.trace / -span.jsonl attach the miss-lifecycle tracer to the policy
// run: every L2 miss becomes a span recording MSHR wait, lookup, network,
// directory, memory, forward, invalidation and reply stages in simulated
// time. trace.json is Chrome trace-event JSON (load it at ui.perfetto.dev or
// chrome://tracing), spans.jsonl one JSON object per miss. Either flag also
// prints the per-class latency breakdown and reconciles the span counts
// against the per-node miss counters (the run fails on mismatch). -manifest
// writes a self-describing run manifest for cmd/report.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"costcache/internal/manifest"
	"costcache/internal/numasim"
	"costcache/internal/obs"
	"costcache/internal/obs/span"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("numasim: ")
	bench := flag.String("bench", "Barnes", "benchmark name")
	policy := flag.String("policy", "DCL", "L2 policy: any registry name (LRU, GD, BCL, DCL, ACL, DCL-a4, ACL-a4, ...)")
	mhz := flag.Int("mhz", 500, "processor clock in MHz (500 or 1000)")
	nohints := flag.Bool("nohints", false, "disable replacement hints")
	table3 := flag.Bool("table3", false, "print the consecutive-miss latency matrix")
	penalty := flag.Bool("penalty", false, "predict miss PENALTY instead of latency as the cost")
	quick := flag.Bool("quick", false, "scale the workload down for a fast smoke run")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address")
	obsDump := flag.Bool("obs.dump", false, "dump the metrics registry as text after the run")
	spanTrace := flag.String("span.trace", "", "write the policy run's miss spans as Chrome trace-event JSON to this file")
	spanJSONL := flag.String("span.jsonl", "", "write the policy run's miss spans as JSONL to this file")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file")
	flag.Parse()

	if *obsListen != "" {
		srv, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s\n", srv.Addr())
	}

	g, ok := workload.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	if *quick {
		g = workload.Quick(g)
	}
	prog, _ := workload.ProgramOf(g)
	f, ok := replacement.ByName(*policy)
	if !ok {
		log.Fatalf("unknown policy %q", *policy)
	}

	mk := func(fac replacement.Factory) numasim.Config {
		cfg := numasim.DefaultConfig(fac)
		cfg.ClockMHz = *mhz
		cfg.Protocol.Hints = !*nohints
		cfg.CollectTable3 = *table3
		cfg.UsePenalty = *penalty
		return cfg
	}

	// The miss-lifecycle tracer attaches to the policy run only.
	var tracer *span.Tracer
	var sinks []*spanSink
	if *spanTrace != "" || *spanJSONL != "" {
		jsonl := openSink(&sinks, *spanJSONL)
		chrome := openSink(&sinks, *spanTrace)
		tracer = span.NewTracer(jsonl, chrome)
	}

	cfg := mk(f)
	cfg.Metrics = obs.Default // instrument the policy run, not the LRU baseline
	cfg.Spans = tracer
	res := numasim.Run(prog, cfg)
	base := res
	if *policy != "LRU" {
		base = numasim.Run(prog, mk(func() replacement.Policy { return replacement.NewLRU() }))
	}

	t := tabulate.New(fmt.Sprintf("%s on %d MHz, policy %s (hints=%v)", g.Name(), *mhz, *policy, !*nohints),
		"Metric", "LRU", *policy)
	t.AddF("execution time (us)", float64(base.ExecNs)/1000, float64(res.ExecNs)/1000)
	t.AddF("L2 misses", base.L2Misses, res.L2Misses)
	t.AddF("aggregate miss latency (us)", float64(base.AggMissNs)/1000, float64(res.AggMissNs)/1000)
	t.AddF("avg miss latency (ns)", base.AvgMissNs, res.AvgMissNs)
	t.AddF("invalidation msgs", base.Protocol.Invalidations, res.Protocol.Invalidations)
	t.AddF("forward nacks", base.Protocol.ForwardNacks, res.Protocol.ForwardNacks)
	t.Fprint(os.Stdout)
	fmt.Printf("execution time reduction over LRU: %.2f%%\n",
		100*float64(base.ExecNs-res.ExecNs)/float64(base.ExecNs))

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			log.Fatal(err)
		}
		for _, s := range sinks {
			s.close()
		}
		reconcileSpans(tracer, res)
		fmt.Println()
		tracer.Breakdown().Table(fmt.Sprintf("miss-latency breakdown of %s under %s (mean ns per miss)",
			g.Name(), *policy)).Fprint(os.Stdout)
		if *spanJSONL != "" {
			fmt.Printf("wrote %d spans to %s\n", tracer.Count(), *spanJSONL)
		}
		if *spanTrace != "" {
			fmt.Printf("wrote chrome trace to %s (load at ui.perfetto.dev)\n", *spanTrace)
		}
	}

	if *table3 && res.Table3 != nil {
		fmt.Println()
		res.Table3.Table().Fprint(os.Stdout)
		fmt.Printf("same-latency fraction: %.1f%%\n", res.Table3.SameLatencyFraction()*100)
	}

	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, g.Name(), *policy, *mhz, *quick, !*nohints, res, base, tracer); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote manifest to %s\n", *manifestPath)
	}

	if *obsDump {
		fmt.Println()
		obs.Default.Snapshot().WriteText(os.Stdout)
	}
}

// spanSink is one buffered span output file.
type spanSink struct {
	f  *os.File
	bw *bufio.Writer
}

func (s *spanSink) close() {
	if err := s.bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := s.f.Close(); err != nil {
		log.Fatal(err)
	}
}

// openSink creates path (nil writer when path is empty) and tracks it for the
// post-run flush. It returns io.Writer, not *bufio.Writer: a typed-nil
// *bufio.Writer would pass the tracer's interface nil checks and crash on the
// first write when only one of the two sink flags is set.
func openSink(sinks *[]*spanSink, path string) io.Writer {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	s := &spanSink{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
	*sinks = append(*sinks, s)
	return s.bw
}

// reconcileSpans cross-checks the tracer against the simulator: exactly one
// span per L2 miss, per node. A mismatch means the instrumentation drifted
// from the miss path and the artifacts cannot be trusted, so it is fatal.
func reconcileSpans(tr *span.Tracer, res numasim.Result) {
	counts := tr.NodeCounts()
	var total int64
	for i, ns := range res.PerNode {
		var got int64
		if i < len(counts) {
			got = counts[i]
		}
		if got != ns.Misses {
			log.Fatalf("span reconciliation: node %d has %d spans but %d L2 misses", i, got, ns.Misses)
		}
		total += got
	}
	if total != res.L2Misses || int64(tr.Count()) != res.L2Misses {
		log.Fatalf("span reconciliation: %d spans vs %d L2 misses", tr.Count(), res.L2Misses)
	}
	fmt.Printf("span reconciliation: %d spans == %d L2 misses across %d nodes\n",
		tr.Count(), res.L2Misses, len(res.PerNode))
}

// writeManifest captures the run configuration and headline metrics (policy
// run and LRU baseline) plus the latency breakdown when spans were traced.
func writeManifest(path, bench, policy string, mhz int, quick, hints bool, res, base numasim.Result, tr *span.Tracer) error {
	m := manifest.New("numasim")
	m.SetConfig("bench", bench)
	m.SetConfig("policy", policy)
	m.SetConfig("mhz", mhz)
	m.SetConfig("quick", quick)
	m.SetConfig("hints", hints)
	for label, r := range map[string]numasim.Result{"policy": res, "baseline-lru": base} {
		m.SetMetric(obs.Name("exec_ns", "run", label), float64(r.ExecNs))
		m.SetMetric(obs.Name("l2_misses", "run", label), float64(r.L2Misses))
		m.SetMetric(obs.Name("agg_miss_ns", "run", label), float64(r.AggMissNs))
		m.SetMetric(obs.Name("avg_miss_ns", "run", label), r.AvgMissNs)
	}
	m.SetMetric("exec_reduction_pct", 100*float64(base.ExecNs-res.ExecNs)/float64(base.ExecNs))
	if tr != nil {
		m.SetMetric("spans", float64(tr.Count()))
		m.SetBreakdown(tr.Breakdown())
	}
	return m.WriteFile(path)
}
