package engine

import (
	"fmt"
	"sync"
	"time"

	"costcache/internal/cache"
	"costcache/internal/cost"
	"costcache/internal/obs"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
)

// shard is one lock domain of the engine: a slice of the global set space,
// its own policy instance, the in-flight load table and the optional LRU
// shadow. All fields below mu are guarded by it; the counters are atomic so
// Stats can read them without stopping traffic.
type shard struct {
	mu     sync.Mutex
	policy replacement.Policy
	id     int // shard index, stamped into spans and analytics
	sets   int // local set count (global sets / shards)
	ways   int

	keys  [][]uint64
	valid [][]bool
	vals  [][]any

	// flights holds the in-flight GetOrLoad per key; waiters block on the
	// flight's done channel off-lock, so a slow loader never holds the shard.
	// flightsMax is the table's high-water depth (mutex-guarded).
	flights    map[uint64]*flight
	flightsMax int

	// shadow replays touches and installs through a same-geometry LRU cache;
	// costs holds the last charged cost per shadow block so the shadow's
	// misses are priced like the engine's.
	shadow *cache.Cache
	costs  map[uint64]replacement.Cost

	// ghosts retains the last sets×ways evicted values for serve-stale
	// (nil unless the engine's resilience config enables it). gring is a
	// FIFO of ghost keys bounding the map at the shard's own capacity;
	// costv tracks each resident way's charged cost so an evicted value
	// ghosts with its class.
	ghosts map[uint64]ghost
	gring  []uint64
	ghead  int
	costv  [][]replacement.Cost

	hits, misses, coalesced *obs.Counter
	evictions, costPaid     *obs.Counter
	lockWait                *obs.Counter
}

// flight is one in-flight load. The result fields are written by the leader
// (or, on the resilient path, the background load goroutine) before done is
// closed and read by waiters after it, so the channel close publishes them.
type flight struct {
	done     chan struct{}
	val      any
	cost     replacement.Cost
	charged  int64 // cost actually charged at install (0 if a Set won the race)
	err      error
	panicked bool
	pan      any
}

// ghost is one evicted-but-retained value: the serve-stale fallback when a
// breaker is open or a deadline expires. slot is its position in the gring
// FIFO (a re-ghosted key abandons its old slot, which then tombstones).
type ghost struct {
	val  any
	cost replacement.Cost
	slot int
}

func newShard(id, sets, ways int, p replacement.Policy, reg *obs.Registry, ns string, withShadow, withGhosts bool) *shard {
	s := &shard{
		policy:  p,
		id:      id,
		sets:    sets,
		ways:    ways,
		keys:    make([][]uint64, sets),
		valid:   make([][]bool, sets),
		vals:    make([][]any, sets),
		flights: make(map[uint64]*flight),
	}
	for i := 0; i < sets; i++ {
		s.keys[i] = make([]uint64, ways)
		s.valid[i] = make([]bool, ways)
		s.vals[i] = make([]any, ways)
	}
	p.Reset(sets, ways)
	counter := func(base string) *obs.Counter {
		if reg == nil {
			return &obs.Counter{}
		}
		return reg.Counter(shardLabel(ns, base, id))
	}
	s.hits = counter("engine_hits")
	s.misses = counter("engine_misses")
	s.coalesced = counter("engine_coalesced")
	s.evictions = counter("engine_evictions")
	s.costPaid = counter("engine_cost_paid")
	s.lockWait = counter("engine_lock_wait_ns")
	if withGhosts {
		s.ghosts = make(map[uint64]ghost)
		s.gring = make([]uint64, sets*ways)
		s.costv = make([][]replacement.Cost, sets)
		for i := range s.costv {
			s.costv[i] = make([]replacement.Cost, ways)
		}
	}
	if withShadow {
		s.costs = make(map[uint64]replacement.Cost)
		s.shadow = cache.New(cache.Config{
			Name:       fmt.Sprintf("shadow-%d", id),
			SizeBytes:  sets * ways,
			Ways:       ways,
			BlockBytes: 1, // keys are "blocks": no spatial locality to model
			Policy:     replacement.NewLRU(),
			Cost:       cost.Func(func(block uint64) replacement.Cost { return s.costs[block] }),
		})
	}
	return s
}

// lock acquires the shard mutex, charging blocked time to the lock-wait
// counter. TryLock keeps the uncontended fast path free of clock reads.
func (s *shard) lock() {
	if s.mu.TryLock() {
		return
	}
	t0 := time.Now()
	s.mu.Lock()
	s.lockWait.Add(time.Since(t0).Nanoseconds())
}

// find returns the way holding key in set, or -1.
func (s *shard) find(set int, key uint64) int {
	for w := 0; w < s.ways; w++ {
		if s.valid[set][w] && s.keys[set][w] == key {
			return w
		}
	}
	return -1
}

// install places key into set (which must not already hold it), evicting the
// policy's victim from a full set, charging cost and mirroring the install
// into the shadow. Callers hold the shard lock and have counted the miss; sp
// is the caller's (usually nil) request span, marked at the fill/shadow
// stage boundaries.
func (s *shard) install(set int, key uint64, value any, c replacement.Cost, sp *reqspan.Span) {
	s.policy.Access(set, key, false)
	w := -1
	for i := 0; i < s.ways; i++ {
		if !s.valid[set][i] {
			w = i
			break
		}
	}
	if w < 0 {
		w = s.policy.Victim(set)
		if w < 0 || w >= s.ways || !s.valid[set][w] {
			panic(fmt.Sprintf("engine: policy %s returned bad victim %d", s.policy.Name(), w))
		}
		s.evictions.Inc()
		if s.ghosts != nil {
			s.stashGhost(s.keys[set][w], s.vals[set][w], s.costv[set][w])
		}
	}
	s.keys[set][w] = key
	s.valid[set][w] = true
	s.vals[set][w] = value
	if s.costv != nil {
		s.costv[set][w] = c
	}
	s.policy.Fill(set, w, key, c)
	s.costPaid.Add(int64(c))
	sp.AddCost(int64(c))
	sp.Mark(reqspan.StageFill)
	s.setShadowCost(set, key, c)
	s.touchShadow(set, key)
	sp.Mark(reqspan.StageShadow)
}

// stashGhost retains an evicted value for serve-stale (lock held). The FIFO
// ring bounds the ghost map at the shard's capacity: the incoming ghost
// overwrites the ring's oldest slot, evicting whichever ghost still lives
// there. A key ghosted again abandons its old slot (the stale ring entry no
// longer matches the map and is skipped when its turn comes).
func (s *shard) stashGhost(key uint64, val any, c replacement.Cost) {
	slot := s.ghead
	if old, ok := s.ghosts[s.gring[slot]]; ok && old.slot == slot {
		delete(s.ghosts, s.gring[slot])
	}
	s.gring[slot] = key
	s.ghosts[key] = ghost{val: val, cost: c, slot: slot}
	s.ghead = (s.ghead + 1) % len(s.gring)
}

// ghostValue looks up key's retained value, taking the shard lock (callers
// on the degraded path hold no lock). Safe with ghosts disabled.
func (s *shard) ghostValue(key uint64) (any, bool) {
	s.lock()
	defer s.mu.Unlock()
	g, ok := s.ghosts[key]
	return g.val, ok
}

// shadowBlock maps (set, key) to the shadow cache's block address: the low
// bits pin the shadow set to the engine set, the rest carry the key, so the
// shadow sees the same set partition the engine uses.
func (s *shard) shadowBlock(set int, key uint64) uint64 {
	return key*uint64(s.sets) + uint64(set)
}

// setShadowCost records the cost the shadow charges when it misses key.
func (s *shard) setShadowCost(set int, key uint64, c replacement.Cost) {
	if s.costs != nil {
		s.costs[s.shadowBlock(set, key)] = c
	}
}

// touchShadow replays one engine touch or install into the LRU shadow.
func (s *shard) touchShadow(set int, key uint64) {
	if s.shadow != nil {
		s.shadow.Access(s.shadowBlock(set, key), false)
	}
}

// shadowCost returns the aggregate cost the shadow has paid.
func (s *shard) shadowCost() int64 {
	if s.shadow == nil {
		return 0
	}
	s.lock()
	defer s.mu.Unlock()
	return s.shadow.Stats().AggCost
}
