package manifest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"costcache/internal/obs"
	"costcache/internal/obs/span"
)

func sample() *Manifest {
	m := New("test")
	m.SetConfig("bench", "Barnes")
	m.SetConfig("mhz", 500)
	m.SetMetric("exec_ns", 1_000_000)
	m.SetMetric("l2_misses", 31622)
	return m
}

func TestRoundTrip(t *testing.T) {
	m := sample()
	tr := span.NewTracer(nil, nil)
	s := tr.Begin(0, 1, false, 0)
	s.SegQ(span.StageLookup, 0, 0, 14)
	tr.Finish(s, 120, 'U', true, false)
	m.SetBreakdown(tr.Breakdown())

	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Command != "test" {
		t.Fatalf("header mangled: %+v", got)
	}
	if got.Config["bench"] != "Barnes" || got.Config["mhz"] != "500" {
		t.Fatalf("config mangled: %v", got.Config)
	}
	if got.Metrics["exec_ns"] != 1_000_000 {
		t.Fatalf("metrics mangled: %v", got.Metrics)
	}
	if len(got.LatencyBreakdown) != 2 { // total + lookup rows for local-clean
		t.Fatalf("breakdown rows = %d, want 2", len(got.LatencyBreakdown))
	}
	if got.LatencyBreakdown[0].Class != "local-clean" || got.LatencyBreakdown[0].Stage != "total" {
		t.Fatalf("first row = %+v", got.LatencyBreakdown[0])
	}
}

// TestArtifactsRoundTrip pins the artifact registry report -explain joins
// on: SetArtifact/Artifact round-trip through the JSON document, absent
// kinds read as "", and Validate rejects empty kinds and paths.
func TestArtifactsRoundTrip(t *testing.T) {
	m := sample()
	if m.Artifact("decision_trace") != "" {
		t.Fatal("absent artifact kind not empty")
	}
	m.SetArtifact("decision_trace", "dec.jsonl")
	m.SetArtifact("request_spans", "results/spans.jsonl")
	if err := m.Validate(); err != nil {
		t.Fatalf("valid artifacts rejected: %v", err)
	}

	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Artifact("decision_trace") != "dec.jsonl" ||
		got.Artifact("request_spans") != "results/spans.jsonl" {
		t.Fatalf("artifacts mangled in round-trip: %+v", got.Artifacts)
	}

	bad := sample()
	bad.SetArtifact("decision_trace", "")
	if err := bad.Validate(); err == nil {
		t.Fatal("empty artifact path passed Validate")
	}
	bad = sample()
	bad.SetArtifact("", "dec.jsonl")
	if err := bad.Validate(); err == nil {
		t.Fatal("empty artifact kind passed Validate")
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"not-json.json":   `{"schema": `,
		"bad-schema.json": `{"schema":"something/else","command":"x","created_utc":""}`,
		"no-command.json": `{"schema":"` + Schema + `","created_utc":""}`,
		"bad-time.json":   `{"schema":"` + Schema + `","command":"x","created_utc":"yesterday"}`,
	}
	for name, content := range cases {
		if _, err := ReadFile(write(name, content)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAddSnapshotFlattens(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("evictions").Add(7)
	reg.Gauge("depth").Set(3)
	h := reg.Histogram(obs.Name("lat_ns", "node", "0"), obs.ExpBuckets(10, 2, 4))
	h.Observe(10)
	h.Observe(30)

	m := New("test")
	m.AddSnapshot(reg.Snapshot())
	if m.Metrics["evictions"] != 7 || m.Metrics["depth"] != 3 {
		t.Fatalf("scalar instruments mangled: %v", m.Metrics)
	}
	if m.Metrics[`lat_ns_count{node="0"}`] != 2 ||
		m.Metrics[`lat_ns_sum{node="0"}`] != 40 ||
		m.Metrics[`lat_ns_mean{node="0"}`] != 20 {
		t.Fatalf("histogram flattening wrong: %v", m.Metrics)
	}
}

func TestDiffVerdicts(t *testing.T) {
	a, b := sample(), sample()
	b.Metrics["exec_ns"] = 1_100_000 // +10%: regression (lower is better)
	b.Metrics["l2_misses"] = 31000   // -2%: within a 5% tolerance
	a.Metrics["hits"] = 100          // +50%: improvement (higher is better)
	b.Metrics["hits"] = 150          //
	a.Metrics["savings_pct"] = 10    // -50%: regression despite dropping
	b.Metrics["savings_pct"] = 5     //
	a.Metrics["gone"] = 1            // removed
	b.Metrics["fresh"] = 1           // added

	got := map[string]Verdict{}
	for _, e := range Diff(a, b, 5) {
		got[e.Name] = e.Verdict
	}
	want := map[string]Verdict{
		"exec_ns":     VerdictRegressed,
		"l2_misses":   VerdictOK,
		"hits":        VerdictImproved,
		"savings_pct": VerdictRegressed,
		"gone":        VerdictRemoved,
		"fresh":       VerdictAdded,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: verdict %s, want %s", k, got[k], v)
		}
	}
	// Sorted with regressions first.
	entries := Diff(a, b, 5)
	if entries[0].Verdict != VerdictRegressed {
		t.Errorf("first entry %+v, want a regression", entries[0])
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	a, b := sample(), sample()
	a.Metrics["queued_ns"] = 0
	b.Metrics["queued_ns"] = 50
	var e DiffEntry
	for _, entry := range Diff(a, b, 2) {
		if entry.Name == "queued_ns" {
			e = entry
		}
	}
	if e.Verdict != VerdictRegressed {
		t.Fatalf("0 -> 50 on a lower-is-better metric: %+v, want regressed", e)
	}
}

func TestValidateChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := span.NewTracer(nil, &buf)
	s := tr.Begin(3, 9, true, 100)
	s.SegQ(span.StageRequest, 100, 0, 160)
	tr.Finish(s, 480, 'S', false, true)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, spans, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if spans != 1 {
		t.Errorf("spans = %d, want 1", spans)
	}
	if events < 3 { // metadata + span + stage
		t.Errorf("events = %d, want >= 3", events)
	}
	if _, _, err := ValidateChromeTrace([]byte(`[{"ph":"B","name":"x"}]`)); err == nil {
		t.Error("accepted a non-X/M phase")
	}
	if _, _, err := ValidateChromeTrace([]byte(`{"not":"an array"}`)); err == nil {
		t.Error("accepted a non-array document")
	}
}

func TestValidateSpanJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := span.NewTracer(&buf, nil)
	s := tr.Begin(0, 1, false, 0)
	s.SegQ(span.StageLookup, 0, 0, 14)
	tr.Finish(s, 120, 'U', true, false)
	s = tr.Begin(1, 2, true, 50)
	tr.Finish(s, 550, 'E', false, true)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateSpanJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if spans != 2 {
		t.Errorf("spans = %d, want 2", spans)
	}
	bad := []string{
		`{"node":0,"class":"local-clean","start":0,"end":10}`,        // no id
		`{"id":1,"node":0,"class":"local-clean","start":10,"end":0}`, // ends first
		strings.Replace(buf.String(), `"stage":"lookup","start":0`, `"stage":"lookup","start":-5`, 1),
	}
	for i, doc := range bad {
		if _, err := ValidateSpanJSONL([]byte(doc)); err == nil {
			t.Errorf("bad document %d accepted", i)
		}
	}
}
