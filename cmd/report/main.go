// Command report works with the run manifests the other commands write into
// results/ (see internal/manifest).
//
// Diff mode compares two manifests and flags metric drift:
//
//	report [-tol 2] [-strict] old.json new.json
//
// Each metric beyond the tolerance is classified improved or regressed by
// the metric's good direction (latencies down, savings up). Exit status: 0
// on ok/improved/drift (warn-only by default), 1 with -strict when anything
// regressed, 2 when either manifest is malformed.
//
// Check mode validates observability artifacts structurally:
//
//	report -check file...
//
// Files are sniffed by content: a JSON array is validated as a Chrome
// trace, a .jsonl file as span JSONL, anything else as a manifest. Exit
// status 1 if any file is malformed.
//
// Attribution mode diffs the serving-path stage-attribution tables of two
// cachebench manifests (the attr_* series written under -attr):
//
//	report -attr [-tol 10] [-strict] old.json new.json
//
// Each stage's per-span mean nanoseconds is compared; stages whose mean
// grew beyond the tolerance and that carry at least 1% of the new run's
// span time are flagged regressed — "p99 went up" becomes "the load stage
// regressed 40%, everything else held". Exit status as in diff mode.
//
// Explain mode joins two runs' decision streams and request spans and
// attributes the hit-rate / cost-paid delta to ranked decision-level causes:
//
//	report -explain [-tol 2] [-strict] [-windows 4] [-json] baseline.json candidate.json
//
// Both manifests must declare trace artifacts (cachebench -decisions for
// the decision stream, -span.jsonl with full sampling for request spans).
// The output ranks decision-kind shifts (reservation flips, ETD
// detections, victim choices) and decomposes the delta by key cost class,
// shard and request-order time window; every contribution table sums
// exactly to the manifest-level delta, and the join's invariants are
// machine-checked. Exit status: 0 when ok (identical runs explain to an
// all-zero table), 1 with -strict when the candidate regressed beyond the
// tolerance, 2 on malformed inputs, absent streams or a failed invariant.
// See docs/OBSERVABILITY.md ("Explaining a regression") for a walkthrough.
//
// Merge mode builds one combined Chrome timeline:
//
//	report -merge combined.json engine.json simulator.json
//	report -merge combined.json client_spans.jsonl n0_spans.jsonl n1_spans.jsonl
//
// Chrome trace arrays are concatenated verbatim: engine request spans render
// on pids 1000+shard and simulator miss spans on pids 0..63, so the merged
// file shows both in one Perfetto view. Span JSONL inputs (.jsonl) are
// stitched instead of concatenated: server spans join the client spans whose
// trace context they carry (client_id), each node's clock offset is recovered
// from the client net round-trip brackets (see internal/obs/stitch), and the
// merged timeline places every server span strictly inside its client's
// net_write..net_read window on a per-node process. Orphan spans, negative
// durations or an infeasible clock offset fail the merge — CI uses this as
// the cross-node trace reconciliation gate. The result is validated before
// writing; exit status 1 on malformed input or a failed stitch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"costcache/internal/manifest"
	"costcache/internal/obs/explain"
	"costcache/internal/obs/stitch"
	"costcache/internal/tabulate"
)

func main() {
	tol := flag.Float64("tol", 2, "relative drift tolerance in percent")
	strict := flag.Bool("strict", false, "exit 1 when any metric regressed")
	check := flag.Bool("check", false, "validate files instead of diffing manifests")
	attr := flag.Bool("attr", false, "diff the stage-attribution tables of two manifests")
	explainF := flag.Bool("explain", false, "attribute the metric delta between two manifests to decision-level causes")
	windows := flag.Int("windows", 4, "request-order time windows in the -explain contribution tables")
	jsonOut := flag.Bool("json", false, "emit the -explain report as JSON instead of tables")
	merge := flag.Bool("merge", false, "merge Chrome trace files: out.json in.json...")
	flag.Parse()

	if *check {
		os.Exit(runCheck(flag.Args()))
	}
	if *merge {
		os.Exit(runMerge(flag.Args()))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: report [-attr|-explain] [-tol pct] [-strict] old.json new.json\n       report -check file...\n       report -merge out.json in.json...")
		os.Exit(2)
	}
	if *explainF {
		if *windows < 1 {
			fmt.Fprintf(os.Stderr, "report: -windows %d invalid; want a count >= 1\n", *windows)
			os.Exit(2)
		}
		os.Exit(runExplain(flag.Arg(0), flag.Arg(1), *tol, *strict, *windows, *jsonOut))
	}
	if *attr {
		os.Exit(runAttr(flag.Arg(0), flag.Arg(1), *tol, *strict))
	}
	os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *tol, *strict))
}

// runExplain joins two runs' manifests, decision streams and request spans
// and attributes the hit-rate / cost-paid delta to ranked causes. Exit 2
// when either run is malformed, carries no joinable stream, or a join
// invariant fails (the tables would not be trustworthy); 1 with -strict
// when the candidate regressed beyond the tolerance; 0 otherwise.
func runExplain(basePath, candPath string, tol float64, strict bool, windows int, jsonOut bool) int {
	base, err := explain.Load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	cand, err := explain.Load(candPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	if !base.HasStreams() && !cand.HasStreams() {
		fmt.Fprintln(os.Stderr, "report: neither manifest declares a decision_trace or request_spans artifact; rerun cachebench with -decisions and/or -span.jsonl")
		return 2
	}
	r := explain.Explain(base, cand, windows)
	if jsonOut {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 2
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		r.WriteText(os.Stdout)
	}
	if r.Failed() {
		fmt.Fprintln(os.Stderr, "report: explain join invariants failed (see checks above)")
		return 2
	}
	if r.Regressed(tol) {
		if strict {
			fmt.Fprintf(os.Stderr, "report: candidate regressed beyond %.3g%%\n", tol)
			return 1
		}
		fmt.Println("warning: candidate regressed; rerun with -strict to fail on it")
	}
	return 0
}

func runDiff(oldPath, newPath string, tol float64, strict bool) int {
	oldM, err := manifest.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	newM, err := manifest.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	fmt.Printf("old: %s (%s, rev %s)\n", oldPath, oldM.CreatedUTC, orDash(oldM.GitRev))
	fmt.Printf("new: %s (%s, rev %s)\n", newPath, newM.CreatedUTC, orDash(newM.GitRev))

	entries := manifest.Diff(oldM, newM, tol)
	var regressed, improved, churn int
	t := tabulate.New(fmt.Sprintf("metric drift (tolerance %.3g%%)", tol),
		"metric", "old", "new", "delta %", "verdict")
	for _, e := range entries {
		switch e.Verdict {
		case manifest.VerdictRegressed:
			regressed++
		case manifest.VerdictImproved:
			improved++
		case manifest.VerdictAdded, manifest.VerdictRemoved:
			churn++
		default:
			continue // keep the table to actionable rows
		}
		t.Add(e.Name, num(e.Old), num(e.New), fmt.Sprintf("%+.2f", e.DeltaPct), string(e.Verdict))
	}
	if regressed+improved+churn == 0 {
		fmt.Printf("all %d metrics within tolerance\n", len(entries))
		return 0
	}
	t.Fprint(os.Stdout)
	fmt.Printf("%d regressed, %d improved, %d added/removed, %d ok\n",
		regressed, improved, churn, len(entries)-regressed-improved-churn)
	if regressed > 0 {
		if strict {
			return 1
		}
		fmt.Println("warning: regressions above; rerun with -strict to fail on them")
	}
	return 0
}

func runCheck(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "report: -check needs at least one file")
		return 1
	}
	bad := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			bad++
			continue
		}
		switch kindOf(p, data) {
		case "chrome":
			events, spans, err := manifest.ValidateChromeTrace(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", p, err)
				bad++
				continue
			}
			fmt.Printf("%s: valid chrome trace, %d events, %d spans\n", p, events, spans)
		case "jsonl":
			spans, err := manifest.ValidateSpanJSONL(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", p, err)
				bad++
				continue
			}
			fmt.Printf("%s: valid span jsonl, %d spans\n", p, spans)
		default:
			m, err := manifest.ReadFile(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				bad++
				continue
			}
			fmt.Printf("%s: valid manifest, %s, %d metrics, %d breakdown rows\n",
				p, m.Command, len(m.Metrics), len(m.LatencyBreakdown))
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// attrRow is one stage of a manifest's flattened attribution table.
type attrRow struct {
	ns, count float64
}

// attribution reconstructs the stage table from a manifest's attr_* metrics.
// ok is false when the manifest carries no attribution (run without -attr
// sampling).
func attribution(m *manifest.Manifest) (stages map[string]attrRow, spans, totalNs float64, ok bool) {
	spans, ok = m.Metrics["attr_spans"]
	if !ok || spans <= 0 {
		return nil, 0, 0, false
	}
	totalNs = m.Metrics["attr_total_ns"]
	stages = map[string]attrRow{
		"other": {ns: m.Metrics["attr_other_ns"], count: spans},
	}
	const pre = `attr_stage_ns{stage="`
	for name, v := range m.Metrics {
		if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, `"}`) {
			continue
		}
		stage := name[len(pre) : len(name)-2]
		stages[stage] = attrRow{
			ns:    v,
			count: m.Metrics[`attr_stage_count{stage="`+stage+`"}`],
		}
	}
	return stages, spans, totalNs, true
}

// runAttr diffs two manifests' stage-attribution tables by per-span mean
// nanoseconds, attributing a latency regression to the stages that moved.
func runAttr(oldPath, newPath string, tol float64, strict bool) int {
	oldM, err := manifest.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	newM, err := manifest.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	oldT, oldSpans, _, ok := attribution(oldM)
	if !ok {
		fmt.Fprintf(os.Stderr, "report: %s carries no attr_* metrics (run cachebench with -attr)\n", oldPath)
		return 2
	}
	newT, newSpans, newTotal, ok := attribution(newM)
	if !ok {
		fmt.Fprintf(os.Stderr, "report: %s carries no attr_* metrics (run cachebench with -attr)\n", newPath)
		return 2
	}
	fmt.Printf("old: %s (%.0f spans)  new: %s (%.0f spans)\n", oldPath, oldSpans, newPath, newSpans)
	for _, q := range []string{"p50", "p95", "p99"} {
		name := "attr_latency_" + q + "_ns"
		fmt.Printf("  %s %s -> %s\n", q, dur(oldM.Metrics[name]), dur(newM.Metrics[name]))
	}

	names := make([]string, 0, len(newT))
	for n := range newT {
		if n != "other" {
			names = append(names, n)
		}
	}
	for n := range oldT {
		if _, seen := newT[n]; !seen && n != "other" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	names = append(names, "other")

	regressed := 0
	t := tabulate.New(fmt.Sprintf("stage attribution drift (per-span mean, tolerance %.3g%%)", tol),
		"stage", "old ns/span", "new ns/span", "delta %", "new share %", "verdict")
	for _, n := range names {
		oldMean := safeDiv(oldT[n].ns, oldSpans)
		newMean := safeDiv(newT[n].ns, newSpans)
		delta := 100 * safeDiv(newMean-oldMean, oldMean)
		share := 100 * safeDiv(newT[n].ns, newTotal)
		verdict := "ok"
		switch {
		case oldMean == 0 && newMean == 0:
			verdict = "-"
		case delta > tol && share >= 1:
			verdict = "regressed"
			regressed++
		case delta < -tol && share >= 1:
			verdict = "improved"
		}
		t.Add(n, fmt.Sprintf("%.0f", oldMean), fmt.Sprintf("%.0f", newMean),
			fmt.Sprintf("%+.2f", delta), fmt.Sprintf("%.2f", share), verdict)
	}
	t.Fprint(os.Stdout)
	if regressed > 0 {
		fmt.Printf("%d stage(s) regressed beyond %.3g%%\n", regressed, tol)
		if strict {
			return 1
		}
		fmt.Println("warning: stage regressions above; rerun with -strict to fail on them")
	} else {
		fmt.Println("no stage regressed beyond tolerance")
	}
	return 0
}

// runMerge builds one combined Chrome timeline (first arg is the output
// path). Chrome trace arrays are concatenated verbatim; span JSONL inputs
// (.jsonl) are pooled and stitched — server spans are joined to the client
// spans that propagated them, each node's clock offset is recovered from the
// net round-trip brackets, and the stitch fails (exit 1) on orphan spans,
// negative durations or an infeasible offset. The combined timeline is
// validated before writing.
func runMerge(paths []string) int {
	if len(paths) < 3 {
		fmt.Fprintln(os.Stderr, "report: -merge needs an output and at least two inputs")
		return 2
	}
	out, inputs := paths[0], paths[1:]
	var merged []json.RawMessage
	var spans []stitch.Span
	for _, p := range inputs {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		if kindOf(p, data) == "jsonl" {
			ss, err := stitch.ParseJSONL(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", p, err)
				return 1
			}
			spans = append(spans, ss...)
			continue
		}
		var evs []json.RawMessage
		if err := json.Unmarshal(data, &evs); err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: not a Chrome trace array: %v\n", p, err)
			return 1
		}
		merged = append(merged, evs...)
	}
	if len(spans) > 0 {
		r, err := stitch.Stitch(spans)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		fmt.Printf("stitched %d client + %d server spans: %d pairs, %d local\n",
			r.Clients, r.Servers, r.Pairs, r.Local)
		for _, fit := range r.Nodes {
			fmt.Printf("  node %s: %d pairs, clock offset %s (feasible slack %s)\n",
				fit.Node, fit.Pairs, signedNs(fit.OffsetNs), signedNs(fit.SlackNs))
		}
		var evs []json.RawMessage
		if err := json.Unmarshal(r.ChromeTrace(), &evs); err != nil {
			fmt.Fprintln(os.Stderr, "report: stitched trace:", err)
			return 1
		}
		merged = append(merged, evs...)
	}
	data, err := json.Marshal(merged)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	events, spanCount, err := manifest.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: merged trace invalid: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	fmt.Printf("%s: merged %d files, %d events, %d spans (load at ui.perfetto.dev)\n",
		out, len(inputs), events, spanCount)
	return 0
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// signedNs renders a possibly negative nanosecond quantity (a clock offset)
// in a human unit.
func signedNs(ns int64) string {
	if ns < 0 {
		return "-" + dur(float64(-ns))
	}
	return dur(float64(ns))
}

// dur renders nanoseconds in a human unit.
func dur(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// kindOf sniffs the artifact kind: a leading '[' is a Chrome trace array, a
// .jsonl extension the span stream, anything else a manifest.
func kindOf(path string, data []byte) string {
	if strings.HasSuffix(path, ".jsonl") {
		return "jsonl"
	}
	if d := bytes.TrimLeft(data, " \t\r\n"); len(d) > 0 && d[0] == '[' {
		return "chrome"
	}
	return "manifest"
}

func num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
