package main

import (
	"os"
	"path/filepath"
	"testing"

	"costcache/internal/manifest"
	"costcache/internal/obs"
)

// writeAttrManifest builds a manifest carrying a hand-rolled attr_* table:
// spans and per-stage (ns, count) cells, the shape cachebench writes under
// -attr. stages maps stage name → total ns; every stage gets count = spans.
func writeAttrManifest(t *testing.T, dir, name string, spans float64, stages map[string]float64) string {
	t.Helper()
	m := manifest.New("cachebench")
	if spans > 0 {
		m.SetMetric("attr_spans", spans)
		m.SetMetric("attr_sample_every", 1)
		var total float64
		for s, ns := range stages {
			m.SetMetric(obs.Name("attr_stage_ns", "stage", s), ns)
			m.SetMetric(obs.Name("attr_stage_count", "stage", s), spans)
			total += ns
		}
		m.SetMetric("attr_total_ns", total)
		m.SetMetric("attr_other_ns", 0)
	}
	path := filepath.Join(dir, name)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunAttrMissingTable: a manifest with no attribution (or an empty one)
// is a usage error — exit 2, pointing at the -attr rerun — in either
// argument position.
func TestRunAttrMissingTable(t *testing.T) {
	dir := t.TempDir()
	with := writeAttrManifest(t, dir, "with.json", 100, map[string]float64{"load": 1000})
	without := writeAttrManifest(t, dir, "without.json", 0, nil)

	if got := runAttr(without, with, 2, false); got != 2 {
		t.Fatalf("empty old table: exit %d, want 2", got)
	}
	if got := runAttr(with, without, 2, false); got != 2 {
		t.Fatalf("empty new table: exit %d, want 2", got)
	}
	if got := runAttr(filepath.Join(dir, "absent.json"), with, 2, false); got != 2 {
		t.Fatalf("missing file: exit %d, want 2", got)
	}
}

// TestRunAttrMismatchedStages: stage sets that only partly overlap diff
// cleanly — stages unique to either side render without flagging a
// spurious regression (a new stage has no old mean to regress from).
func TestRunAttrMismatchedStages(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttrManifest(t, dir, "old.json", 100, map[string]float64{"load": 1000, "shadow": 50})
	newP := writeAttrManifest(t, dir, "new.json", 100, map[string]float64{"load": 1000, "fill": 70})
	if got := runAttr(oldP, newP, 2, true); got != 0 {
		t.Fatalf("mismatched stage sets: exit %d, want 0", got)
	}
}

// TestRunAttrZeroLatencyStages: all-zero stage times on both sides are a
// no-op diff (verdict "-"), not a divide-by-zero or a regression.
func TestRunAttrZeroLatencyStages(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttrManifest(t, dir, "old.json", 50, map[string]float64{"lock_wait": 0, "decision": 0})
	newP := writeAttrManifest(t, dir, "new.json", 50, map[string]float64{"lock_wait": 0, "decision": 0})
	if got := runAttr(oldP, newP, 2, true); got != 0 {
		t.Fatalf("zero-latency stages: exit %d, want 0", got)
	}
}

// TestRunAttrExitCodes: a genuine stage regression warns at exit 0 by
// default and fails with 1 under -strict.
func TestRunAttrExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldP := writeAttrManifest(t, dir, "old.json", 100, map[string]float64{"load": 1000})
	newP := writeAttrManifest(t, dir, "new.json", 100, map[string]float64{"load": 2000})
	if got := runAttr(oldP, newP, 2, false); got != 0 {
		t.Fatalf("regression without -strict: exit %d, want 0", got)
	}
	if got := runAttr(oldP, newP, 2, true); got != 1 {
		t.Fatalf("regression with -strict: exit %d, want 1", got)
	}
	if got := runAttr(oldP, newP, 300, true); got != 0 {
		t.Fatalf("regression inside tolerance: exit %d, want 0", got)
	}
}

// TestRunExplainExitCodes: manifests without any joinable stream exit 2, as
// do unreadable manifests; a self-join with a declared stream exits 0.
func TestRunExplainExitCodes(t *testing.T) {
	dir := t.TempDir()
	bare := writeAttrManifest(t, dir, "bare.json", 0, nil)
	if got := runExplain(bare, bare, 2, false, 4, false); got != 2 {
		t.Fatalf("streamless manifests: exit %d, want 2", got)
	}
	if got := runExplain(filepath.Join(dir, "nope.json"), bare, 2, false, 4, false); got != 2 {
		t.Fatalf("missing manifest: exit %d, want 2", got)
	}

	dec := filepath.Join(dir, "dec.jsonl")
	if err := os.WriteFile(dec, []byte("{\"seq\":1,\"policy\":\"BCL\",\"kind\":\"evict\",\"class\":\"cost=1\",\"set\":0,\"cost\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := manifest.New("cachebench")
	m.SetMetric("engine_hits", 1)
	m.SetMetric("engine_misses", 1)
	m.SetMetric("engine_cost_paid", 1)
	m.SetArtifact("decision_trace", "dec.jsonl")
	withDec := filepath.Join(dir, "dec.json")
	if err := m.WriteFile(withDec); err != nil {
		t.Fatal(err)
	}
	if got := runExplain(withDec, withDec, 2, true, 4, false); got != 0 {
		t.Fatalf("identical decisions-only runs: exit %d, want 0", got)
	}
}
