package obs

import (
	"costcache/internal/tabulate"
)

// IntervalReporter renders periodic registry snapshots as a tabulate table:
// one row per window, one column per watched counter, each cell the
// counter's delta over the window. It turns end-of-run aggregates into the
// per-interval statistics that make simulator runs interpretable (when did
// the misses happen, not just how many).
type IntervalReporter struct {
	reg   *Registry
	names []string
	prev  Snapshot
	table *tabulate.Table
}

// NewIntervalReporter watches the named counters in reg. The label column
// header is labelHeader ("refs", "time", ...); cols name both the counters
// and the table columns.
func NewIntervalReporter(reg *Registry, title, labelHeader string, cols ...string) *IntervalReporter {
	header := append([]string{labelHeader}, cols...)
	return &IntervalReporter{
		reg:   reg,
		names: cols,
		prev:  reg.Snapshot(),
		table: tabulate.New(title, header...),
	}
}

// Tick closes the current window: it appends a row of per-window counter
// deltas labeled with label and starts the next window.
func (r *IntervalReporter) Tick(label string) {
	cur := r.reg.Snapshot()
	d := cur.Delta(r.prev)
	r.prev = cur
	row := make([]any, 0, len(r.names)+1)
	row = append(row, label)
	for _, n := range r.names {
		row = append(row, d.Counters[n])
	}
	r.table.AddF(row...)
}

// Table returns the accumulated window table.
func (r *IntervalReporter) Table() *tabulate.Table { return r.table }
