package explain

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"costcache/internal/manifest"
)

// mkManifest builds a minimal cachebench-shaped manifest for a synthetic
// run: hits/misses/cost counters plus any extra metrics and config.
func mkManifest(hits, misses, cost int64, config map[string]string, extra map[string]float64) *manifest.Manifest {
	m := manifest.New("cachebench")
	m.SetMetric("engine_hits", float64(hits))
	m.SetMetric("engine_misses", float64(misses))
	m.SetMetric("engine_coalesced", 0)
	m.SetMetric("engine_cost_paid", float64(cost))
	for k, v := range config {
		m.SetConfig(k, v)
	}
	for k, v := range extra {
		m.SetMetric(k, v)
	}
	return m
}

// The synthetic fixture: six lookups over two shards and two cost classes.
// The candidate turns one cost=5 hit into a re-miss, so Δcost = +5 and
// Δhit-rate = −1/6 — small enough to verify every contribution by hand.
func baseRun() *Run {
	return &Run{
		Path: "base.json",
		Manifest: mkManifest(3, 3, 11,
			map[string]string{"policy": "BCL", "seed": "7"}, nil),
		Decisions: []Decision{
			{Seq: 1, Policy: "BCL", Kind: "evict", Class: "cost=5", Shard: 0, Cost: 5},
		},
		Spans: []SpanRow{
			{ID: 1, Kind: "req", Shard: 0, Key: 1, Outcome: "miss", Cost: 5},
			{ID: 2, Kind: "req", Shard: 0, Key: 1, Outcome: "hit"},
			{ID: 3, Kind: "req", Shard: 0, Key: 1, Outcome: "hit"},
			{ID: 4, Kind: "req", Shard: 1, Key: 2, Outcome: "miss", Cost: 1},
			{ID: 5, Kind: "req", Shard: 1, Key: 2, Outcome: "hit"},
			{ID: 6, Kind: "req", Shard: 0, Key: 3, Outcome: "miss", Cost: 5},
		},
	}
}

func candRun() *Run {
	return &Run{
		Path: "cand.json",
		Manifest: mkManifest(2, 4, 16,
			map[string]string{"policy": "BCL", "seed": "7"}, nil),
		Decisions: []Decision{
			{Seq: 1, Policy: "BCL", Kind: "evict", Class: "cost=5", Shard: 0, Cost: 5},
			{Seq: 2, Policy: "BCL", Kind: "reserve_open", Class: "cost=5", Shard: 0, Cost: 5},
		},
		Spans: []SpanRow{
			{ID: 1, Kind: "req", Shard: 0, Key: 1, Outcome: "miss", Cost: 5},
			{ID: 2, Kind: "req", Shard: 0, Key: 1, Outcome: "hit"},
			{ID: 3, Kind: "req", Shard: 0, Key: 1, Outcome: "miss", Cost: 5},
			{ID: 4, Kind: "req", Shard: 1, Key: 2, Outcome: "miss", Cost: 1},
			{ID: 5, Kind: "req", Shard: 1, Key: 2, Outcome: "hit"},
			{ID: 6, Kind: "req", Shard: 0, Key: 3, Outcome: "miss", Cost: 5},
		},
	}
}

// TestExplainExactSums pins the attribution identities: within every
// dimension the cost contributions sum bit-for-bit to the manifest delta
// and the hit-rate contributions to the rate delta, and the join's checks
// all pass on consistent inputs.
func TestExplainExactSums(t *testing.T) {
	r := Explain(baseRun(), candRun(), 2)
	if r.Failed() {
		t.Fatalf("consistent fixture failed checks: %+v", r.Checks)
	}
	if r.DeltaCost != 5 {
		t.Fatalf("DeltaCost = %d, want 5", r.DeltaCost)
	}
	for _, dim := range [][]Contribution{r.Classes, r.Shards, r.Windows} {
		var cost int64
		var rate float64
		for _, c := range dim {
			cost += c.DeltaCost
			rate += c.HitRateContrib
		}
		if cost != r.DeltaCost {
			t.Fatalf("%s cost sum %d != delta %d", dim[0].Dim, cost, r.DeltaCost)
		}
		if d := rate - r.DeltaHitRate; d > 1e-12 || d < -1e-12 {
			t.Fatalf("%s rate sum %g != delta %g", dim[0].Dim, rate, r.DeltaHitRate)
		}
	}
	// The whole movement is in cost=5 / shard 0: ranked first.
	if r.Classes[0].Group != "cost=5" || r.Classes[0].DeltaCost != 5 {
		t.Fatalf("top class = %+v, want cost=5 +5", r.Classes[0])
	}
	if r.Shards[0].Group != "shard 0" {
		t.Fatalf("top shard = %+v, want shard 0", r.Shards[0])
	}
	// The injected decision shift (one extra reserve_open) ranks first.
	if r.Kinds[0].Kind != "reserve_open" || r.Kinds[0].Delta != 1 {
		t.Fatalf("top kind = %+v, want reserve_open +1", r.Kinds[0])
	}
	if !r.Regressed(2) {
		t.Fatal("a +45%% cost delta must count as regressed at 2%% tolerance")
	}
}

// TestExplainIdenticalRuns: a run explained against itself yields all-zero
// deltas, passes every check and does not regress.
func TestExplainIdenticalRuns(t *testing.T) {
	r := Explain(baseRun(), baseRun(), 4)
	if r.Failed() {
		t.Fatalf("identical runs failed checks: %+v", r.Checks)
	}
	if r.DeltaCost != 0 || r.DeltaHitRate != 0 {
		t.Fatalf("identical runs have delta cost %d rate %g", r.DeltaCost, r.DeltaHitRate)
	}
	for _, k := range r.Kinds {
		if k.Delta != 0 {
			t.Fatalf("kind delta nonzero: %+v", k)
		}
	}
	for _, c := range append(append(r.Classes, r.Shards...), r.Windows...) {
		if c.DeltaCost != 0 || c.HitRateContrib != 0 {
			t.Fatalf("contribution nonzero: %+v", c)
		}
	}
	if r.Regressed(0) {
		t.Fatal("identical runs must not regress at any tolerance")
	}
}

// TestExplainReconcileFailure: a span stream that does not tile the
// manifest counters (here: a stale cost_paid) fails the reconcile check,
// so partial streams cannot masquerade as attributions.
func TestExplainReconcileFailure(t *testing.T) {
	cand := candRun()
	cand.Manifest.SetMetric("engine_cost_paid", 17) // spans sum to 16
	r := Explain(baseRun(), cand, 2)
	if !r.Failed() {
		t.Fatal("mismatched counters must fail a check")
	}
	found := false
	for _, c := range r.Checks {
		if !c.OK && strings.Contains(c.Detail, "rerun with") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed check lacks rerun guidance: %+v", r.Checks)
	}
}

// TestExplainDecisionCounterMismatch: trace_events counters in the manifest
// must agree with the parsed stream.
func TestExplainDecisionCounterMismatch(t *testing.T) {
	base := baseRun()
	base.Manifest.SetMetric(`trace_events{policy="BCL",kind="evict"}`, 2) // stream has 1
	r := Explain(base, candRun(), 2)
	if !r.Failed() {
		t.Fatal("decision counter mismatch must fail a check")
	}
}

// TestExplainDegradedModes: missing streams degrade to partial tables with
// notes, never to fabricated numbers.
func TestExplainDegradedModes(t *testing.T) {
	base, cand := baseRun(), candRun()
	base.Spans, cand.Spans = nil, nil
	r := Explain(base, cand, 2)
	if len(r.Classes)+len(r.Shards)+len(r.Windows) != 0 {
		t.Fatal("span tables built without span streams")
	}
	if len(r.Kinds) == 0 {
		t.Fatal("decision tables lost with spans")
	}
	noted := false
	for _, n := range r.Notes {
		if strings.Contains(n, "span stream missing") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("missing spans not noted: %v", r.Notes)
	}

	// Decisions-only on one side: kind counts fall back to trace_events.
	base, cand = baseRun(), candRun()
	base.Decisions = nil
	base.Manifest.SetMetric(`trace_events{policy="BCL",kind="evict"}`, 1)
	r = Explain(base, cand, 2)
	if r.Failed() {
		t.Fatalf("fallback counters failed: %+v", r.Checks)
	}
	var evict *KindDelta
	for i := range r.Kinds {
		if r.Kinds[i].Kind == "evict" {
			evict = &r.Kinds[i]
		}
	}
	if evict == nil || evict.Baseline != 1 {
		t.Fatalf("trace_events fallback not used: %+v", r.Kinds)
	}
	if len(r.KindClasses) != 0 {
		t.Fatal("kind×class table built without both streams")
	}
}

// TestExplainPolicyCollapse: runs under different policy labels (an
// ablation) compare kinds across the labels instead of splitting every
// kind into two against-zero rows.
func TestExplainPolicyCollapse(t *testing.T) {
	cand := candRun()
	cand.Manifest.Config["policy"] = "BCL-f4"
	for i := range cand.Decisions {
		cand.Decisions[i].Policy = "BCL-f4"
	}
	r := Explain(baseRun(), cand, 2)
	if r.Failed() {
		t.Fatalf("collapse failed checks: %+v", r.Checks)
	}
	for _, k := range r.Kinds {
		if k.Policy != "" {
			t.Fatalf("policy label survived collapse: %+v", k)
		}
		if k.Kind == "evict" && (k.Baseline != 1 || k.Candidate != 1 || k.Delta != 0) {
			t.Fatalf("evict not compared across labels: %+v", k)
		}
	}
}

// TestExplainConfigNotes: differing config keys are noted, and stream-
// identity keys (seed) carry an explicit warning.
func TestExplainConfigNotes(t *testing.T) {
	cand := candRun()
	cand.Manifest.Config["seed"] = "8"
	r := Explain(baseRun(), cand, 2)
	var diff, warn bool
	for _, n := range r.Notes {
		if strings.Contains(n, "config seed: 7 -> 8") {
			diff = true
		}
		if strings.Contains(n, "different request streams") {
			warn = true
		}
	}
	if !diff || !warn {
		t.Fatalf("seed change not surfaced: %v", r.Notes)
	}
}

// TestLoadResolvesArtifacts: artifact paths resolve relative to the
// manifest's directory, streams parse, and a declared-but-missing artifact
// is an error (the manifest asserts it was written).
func TestLoadResolvesArtifacts(t *testing.T) {
	dir := t.TempDir()
	dec := "{\"seq\":1,\"policy\":\"BCL\",\"kind\":\"evict\",\"class\":\"cost=5\",\"shard\":0,\"set\":3,\"cost\":5}\n"
	spans := "{\"id\":1,\"kind\":\"req\",\"shard\":0,\"key\":9,\"op\":\"get\",\"outcome\":\"miss\",\"cost\":5,\"start\":0,\"end\":10,\"stages\":[]}\n" +
		"{\"id\":2,\"kind\":\"miss\",\"shard\":0}\n" // simulator line: skipped
	if err := os.WriteFile(filepath.Join(dir, "dec.jsonl"), []byte(dec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spans.jsonl"), []byte(spans), 0o644); err != nil {
		t.Fatal(err)
	}
	m := mkManifest(0, 1, 5, nil, nil)
	m.SetArtifact("decision_trace", "dec.jsonl")
	m.SetArtifact("request_spans", "spans.jsonl")
	mpath := filepath.Join(dir, "run.json")
	if err := m.WriteFile(mpath); err != nil {
		t.Fatal(err)
	}

	run, err := Load(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Decisions) != 1 || run.Decisions[0].Class != "cost=5" {
		t.Fatalf("decisions = %+v", run.Decisions)
	}
	if len(run.Spans) != 1 || run.Spans[0].Outcome != "miss" {
		t.Fatalf("spans = %+v (simulator line must be skipped)", run.Spans)
	}
	if !run.HasStreams() {
		t.Fatal("loaded run reports no streams")
	}

	m2 := mkManifest(0, 1, 5, nil, nil)
	m2.SetArtifact("decision_trace", "gone.jsonl")
	mpath2 := filepath.Join(dir, "run2.json")
	if err := m2.WriteFile(mpath2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(mpath2); err == nil {
		t.Fatal("declared-but-missing artifact must be an error")
	}
}

// TestParseRejectsCorruptStreams: non-monotonic decision sequence numbers
// and non-JSON lines are parse errors, not silently dropped data.
func TestParseRejectsCorruptStreams(t *testing.T) {
	if _, err := parseDecisions([]byte("{\"seq\":2,\"kind\":\"evict\"}\n{\"seq\":1,\"kind\":\"evict\"}\n")); err == nil {
		t.Fatal("non-monotonic seq must fail")
	}
	if _, err := parseDecisions([]byte("not json\n")); err == nil {
		t.Fatal("garbage line must fail")
	}
	if _, err := parseSpans([]byte("{\"id\":1,\"kind\":\"req\"}\n")); err == nil {
		t.Fatal("request span without outcome must fail")
	}
}

// TestWindowPartition: every lookup lands in exactly one window whatever
// the window count, so the dimension stays a partition.
func TestWindowPartition(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 7} {
		r := Explain(baseRun(), candRun(), w)
		if r.Failed() {
			t.Fatalf("windows=%d failed checks: %+v", w, r.Checks)
		}
		if len(r.Windows) > w {
			t.Fatalf("windows=%d produced %d groups", w, len(r.Windows))
		}
	}
}
