package workload

import "costcache/internal/trace"

// FFT models the SPLASH-2 six-step FFT: a sqrt(n) x sqrt(n) matrix of
// complex doubles, row-banded across processors. Local butterfly sweeps
// alternate with all-to-all transposes in which each processor reads a
// patch from every other processor's band and writes it into its own —
// the classic burst of remote traffic. The paper's footnote reports FFT
// (like Water, MP3D and Radix) "yielded no additional insight"; it is
// included for completeness and as a stress case with phase-bursty remote
// accesses.
type FFT struct {
	// N is the matrix dimension: the transform size is N*N complex points.
	N int
	// Sweeps is the number of butterfly sweeps between transposes.
	Sweeps int
	// Stages is the number of (butterfly, transpose) rounds.
	Stages int
	// Procs is the processor count.
	Procs int
	// Seed controls interleaving.
	Seed int64
}

// DefaultFFT returns the configuration used by the extra-benchmark drivers.
func DefaultFFT() FFT { return FFT{N: 128, Sweeps: 2, Stages: 3, Procs: 8, Seed: 5} }

// Name implements Generator.
func (FFT) Name() string { return "FFT" }

// addr returns the byte address of complex element (i,j): 16 bytes each.
func (w FFT) addr(i, j int) uint64 { return regionMatrix + uint64(i*w.N+j)*16 }

// Generate implements Generator.
func (w FFT) Generate() *trace.Trace { return w.emit().build(w.Name()) }

// Program returns the barrier-structured form of the FFT workload.
func (w FFT) Program() *Program { return w.emit().buildProgram(w.Name()) }

func (w FFT) emit() *builder {
	b := newBuilder(w.Procs, w.Seed)
	rows := w.N / w.Procs

	// Initialization: each processor writes its row band (first touch).
	for p := 0; p < w.Procs; p++ {
		for i := p * rows; i < (p+1)*rows; i++ {
			for j := 0; j < w.N; j += 4 { // one ref per 64-byte block
				b.write(p, w.addr(i, j))
			}
		}
	}
	b.barrier()

	for stage := 0; stage < w.Stages; stage++ {
		// Butterfly sweeps over the local band: read pairs, write results.
		for s := 0; s < w.Sweeps; s++ {
			stride := 1 << (s % 5)
			for p := 0; p < w.Procs; p++ {
				for i := p * rows; i < (p+1)*rows; i++ {
					for j := 0; j+stride*4 < w.N; j += 4 {
						b.read(p, w.addr(i, j))
						b.read(p, w.addr(i, (j+stride*4)%w.N))
						b.write(p, w.addr(i, j))
					}
				}
			}
			b.barrier()
		}
		// Transpose: processor p reads patch (q-band rows, p-band columns)
		// from every q and writes it into its own band. Reads from q != p
		// are remote; writes are local.
		for p := 0; p < w.Procs; p++ {
			for q := 0; q < w.Procs; q++ {
				for i := q * rows; i < (q+1)*rows; i++ {
					for j := p * rows; j < (p+1)*rows; j += 4 {
						b.read(p, w.addr(i, j))
						b.write(p, w.addr(j, i&^3))
					}
				}
			}
		}
		b.barrier()
	}
	return b
}
