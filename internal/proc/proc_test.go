package proc

import "testing"

func TestIssueRate(t *testing.T) {
	w := New(DefaultParams(), 2) // 500 MHz
	var last int64
	for i := 0; i < 10; i++ {
		issue := w.IssueReady()
		if issue < last {
			t.Fatalf("issue times not monotone: %d after %d", issue, last)
		}
		last = issue
		w.Record(issue, issue+2) // L1 hits
	}
	// 10 refs at 3 cycles compute each, 2ns cycles: ~60ns of issue time.
	if got := w.IssueReady(); got != 60 {
		t.Fatalf("after 10 hits, next issue at %d, want 60", got)
	}
}

func TestWindowLimitsRunahead(t *testing.T) {
	p := DefaultParams() // 64-entry list, 4 per slot -> 16 slots
	w := New(p, 2)
	// Issue 16 loads that all miss with 1000ns latency; the 17th must wait
	// for the first retirement.
	for i := 0; i < 16; i++ {
		issue := w.IssueReady()
		if issue > 100 {
			t.Fatalf("ref %d issued at %d: window stalled too early", i, issue)
		}
		w.Record(issue, issue+1000)
	}
	if got := w.IssueReady(); got < 1000 {
		t.Fatalf("17th ref issued at %d, want >= 1000 (window full)", got)
	}
}

func TestMSHRLimit(t *testing.T) {
	p := DefaultParams()
	p.ActiveList = 1024 // window not the constraint here
	w := New(p, 2)
	// 8 outstanding misses allowed; the 9th must wait for the earliest.
	for i := 0; i < 8; i++ {
		tt := w.WaitMSHR(int64(i))
		if tt != int64(i) {
			t.Fatalf("miss %d delayed to %d", i, tt)
		}
		w.AddMiss(500 + int64(i))
	}
	if got := w.WaitMSHR(10); got != 500 {
		t.Fatalf("9th miss at %d, want 500", got)
	}
	w.AddMiss(600)
	// After time 600 everything completed.
	if got := w.WaitMSHR(10000); got != 10000 {
		t.Fatalf("idle MSHR wait = %d", got)
	}
}

func TestInOrderRetire(t *testing.T) {
	w := New(DefaultParams(), 1)
	w.Record(0, 1000) // long miss
	w.Record(3, 10)   // fast hit issued later must retire after the miss
	if w.lastRetire != 1000 {
		t.Fatalf("lastRetire = %d, want 1000 (in-order)", w.lastRetire)
	}
}

func TestDrainAndSync(t *testing.T) {
	w := New(DefaultParams(), 2)
	w.Record(0, 700)
	w.AddMiss(900)
	if got := w.DrainTime(); got != 900 {
		t.Fatalf("DrainTime = %d, want 900 (outstanding miss)", got)
	}
	w.SyncTo(2000)
	if got := w.IssueReady(); got != 2000 {
		t.Fatalf("after SyncTo, IssueReady = %d", got)
	}
	if got := w.DrainTime(); got != 2000 {
		t.Fatalf("after SyncTo, DrainTime = %d", got)
	}
}

func TestOverlapHidesLatency(t *testing.T) {
	// With a window of 16 slots and 8 MSHRs, 8 independent misses of 400ns
	// each overlap: total time well under 8*400.
	w := New(DefaultParams(), 2)
	var issue int64
	for i := 0; i < 8; i++ {
		issue = w.IssueReady()
		issue = w.WaitMSHR(issue)
		w.AddMiss(issue + 400)
		w.Record(issue, issue+400)
	}
	if got := w.DrainTime(); got > 500 {
		t.Fatalf("8 overlapped misses took %d ns, want < 500", got)
	}
}

func TestBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Params{}, 2)
}
