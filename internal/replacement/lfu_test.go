package replacement

import (
	"reflect"
	"testing"
)

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := newTestCache(t, 1, 4, NewLFU(), unitCost)
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	// Hit 0 three times, 1 twice, 2 once; 3 stays at its fill count.
	c.access(0)
	c.access(0)
	c.access(0)
	c.access(1)
	c.access(1)
	c.access(2)
	c.access(9) // evicts 3 (count 1, least)
	if !reflect.DeepEqual(c.evictions, []uint64{3}) {
		t.Fatalf("evictions = %v, want [3]", c.evictions)
	}
	// Between equal counts (9 and... 9 has count 1), ties break toward LRU.
	c.access(10) // 9 (count 1) is the only count-1 block -> evicted
	if !reflect.DeepEqual(c.evictions, []uint64{3, 9}) {
		t.Fatalf("evictions = %v, want [3 9]", c.evictions)
	}
}

func TestLFUTieBreaksTowardLRU(t *testing.T) {
	c := newTestCache(t, 1, 2, NewLFU(), unitCost)
	c.access(0)
	c.access(1)
	// Both have count 1; 0 is LRU-most.
	c.access(2)
	if !reflect.DeepEqual(c.evictions, []uint64{0}) {
		t.Fatalf("evictions = %v, want [0]", c.evictions)
	}
}

func TestLFUInvalidateResetsCount(t *testing.T) {
	p := NewLFU()
	c := newTestCache(t, 1, 2, p, unitCost)
	c.access(0)
	c.access(0)
	c.invalidate(0)
	if p.count[0][0] != 0 {
		t.Fatal("count must reset on invalidation")
	}
}

func TestSLRUProtectsReusedBlocks(t *testing.T) {
	c := newTestCache(t, 1, 4, NewSLRU(), unitCost)
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	// Promote 0 and 1 (hits); 2 and 3 stay probationary.
	c.access(0)
	c.access(1)
	// A streaming burst must evict only probationary blocks.
	c.access(10)
	c.access(11)
	c.access(12)
	for _, e := range c.evictions {
		if e == 0 || e == 1 {
			t.Fatalf("protected block %d evicted by streaming: %v", e, c.evictions)
		}
	}
	if !c.access(0) || !c.access(1) {
		t.Fatal("protected blocks must survive the stream")
	}
}

func TestSLRUDemotesWhenProtectedFull(t *testing.T) {
	p := NewSLRU()
	c := newTestCache(t, 1, 4, p, unitCost) // protected capacity 2
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	c.access(0) // protect 0
	c.access(1) // protect 1
	c.access(2) // protect 2: must demote one of {0,1}
	n := 0
	for w := 0; w < 4; w++ {
		if p.protected[0][w] {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("protected members = %d, want capacity 2", n)
	}
}

func TestSLRUVictimWhenAllProtected(t *testing.T) {
	c := newTestCache(t, 1, 2, NewSLRU(), unitCost) // protected capacity 1
	c.access(0)
	c.access(1)
	c.access(0) // protect 0
	c.access(2) // evicts probationary 1
	if !reflect.DeepEqual(c.evictions, []uint64{1}) {
		t.Fatalf("evictions = %v, want [1]", c.evictions)
	}
}

func TestLFUAndSLRUInRegistry(t *testing.T) {
	for _, name := range []string{"LFU", "SLRU"} {
		f, ok := ByName(name)
		if !ok || f().Name() != name {
			t.Errorf("registry missing %s", name)
		}
	}
}

func TestLFUSLRURandomOpsInvariants(t *testing.T) {
	for _, f := range []Factory{
		func() Policy { return NewLFU() },
		func() Policy { return NewSLRU() },
	} {
		ops := genOps(20000, 300, 0.03, 11)
		cost := func(b uint64) Cost { return Cost(b % 5) }
		ev, _, misses, _ := runPolicy(t, f(), 8, 4, cost, ops)
		if misses == 0 || len(ev) == 0 {
			t.Fatal("no activity")
		}
	}
}
