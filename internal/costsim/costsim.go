// Package costsim is the trace-driven simulator of Section 3: it replays a
// sample processor's view of a multiprocessor trace (local references plus
// remote-write invalidations) through the paper's two-level hierarchy — a
// 4 KB direct-mapped L1 in front of the 16 KB 4-way L2 under study — and
// accounts the aggregate miss cost charged by a cost function at the L2.
package costsim

import (
	"costcache/internal/cache"
	"costcache/internal/cost"
	"costcache/internal/replacement"
	"costcache/internal/trace"
)

// Config is the simulated memory hierarchy geometry. The zero value is
// replaced by Default().
type Config struct {
	// L1Size is the first-level capacity in bytes (direct-mapped).
	L1Size int
	// L2Size and L2Ways describe the second-level cache, where the
	// cost-sensitive replacement algorithm operates.
	L2Size, L2Ways int
	// BlockBytes is the line size of both levels.
	BlockBytes int
}

// Default returns the paper's basic configuration (Section 3.1): 4 KB
// direct-mapped L1, 16 KB 4-way L2, 64-byte blocks.
func Default() Config {
	return Config{L1Size: 4 << 10, L2Size: 16 << 10, L2Ways: 4, BlockBytes: 64}
}

func (c Config) orDefault() Config {
	if c.L1Size == 0 && c.L2Size == 0 {
		return Default()
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	return c
}

// Result summarizes one simulation run.
type Result struct {
	// Policy is the replacement algorithm's name.
	Policy string
	// L1 and L2 are the per-level counters; L2.AggCost is the aggregate
	// miss cost the algorithms minimize.
	L1, L2 cache.Stats
	// Invalidations counts remote-write invalidations applied to the
	// hierarchy.
	Invalidations int64
}

// Run replays view through a fresh hierarchy using the given policy at the
// L2 and src as both the charged and the predicted miss cost.
func Run(view []trace.SampleRef, cfg Config, p replacement.Policy, src cost.Source) Result {
	cfg = cfg.orDefault()
	l1 := cache.New(cache.Config{
		Name: "L1", SizeBytes: cfg.L1Size, Ways: 1, BlockBytes: cfg.BlockBytes,
	})
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways, BlockBytes: cfg.BlockBytes,
		Policy: p, Cost: src,
	})
	h := cache.NewHierarchy(l1, l2)
	observer, _ := src.(cost.Observer)
	res := Result{Policy: p.Name()}
	for _, r := range view {
		if r.Remote {
			h.Invalidate(r.Addr)
			res.Invalidations++
			continue
		}
		// Observers learn from the access before the cache acts on it, so a
		// miss's fill cost reflects the current reference (e.g. NextOp
		// predicts the next access from this one).
		if observer != nil {
			observer.OnAccess(r.Addr/uint64(cfg.BlockBytes), r.Op == trace.Write)
		}
		h.Access(r.Addr, r.Op == trace.Write)
	}
	res.L1 = l1.Stats()
	res.L2 = l2.Stats()
	return res
}

// MissCounts replays view under plain LRU and returns the per-block L2 miss
// counts. Because LRU ignores costs, the aggregate cost of LRU under ANY
// static cost mapping is derivable from these counts alone — the experiment
// drivers exploit this to evaluate dozens of cost mappings with one
// simulation.
func MissCounts(view []trace.SampleRef, cfg Config) (counts map[uint64]int64, stats cache.Stats) {
	cfg = cfg.orDefault()
	counts = make(map[uint64]int64)
	l1 := cache.New(cache.Config{
		Name: "L1", SizeBytes: cfg.L1Size, Ways: 1, BlockBytes: cfg.BlockBytes,
	})
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways, BlockBytes: cfg.BlockBytes,
		Policy: replacement.NewLRU(),
		Cost: cost.Func(func(block uint64) replacement.Cost {
			counts[block]++
			return 0
		}),
	})
	h := cache.NewHierarchy(l1, l2)
	for _, r := range view {
		if r.Remote {
			h.Invalidate(r.Addr)
			continue
		}
		h.Access(r.Addr, r.Op == trace.Write)
	}
	return counts, l2.Stats()
}

// CostOf evaluates the aggregate cost of a recorded miss-count profile under
// a static cost mapping.
func CostOf(counts map[uint64]int64, src cost.Source) int64 {
	var total int64
	for block, n := range counts {
		total += n * int64(src.MissCost(block))
	}
	return total
}

// RelativeSavings returns (lruCost - algCost) / lruCost, the paper's
// "relative cost savings" metric, as a fraction (multiply by 100 for the
// paper's percentages). A zero LRU cost yields zero savings.
func RelativeSavings(lruCost, algCost int64) float64 {
	if lruCost == 0 {
		return 0
	}
	return float64(lruCost-algCost) / float64(lruCost)
}

// MeasuredHAF returns the fraction of local references in view whose block
// is assigned the high cost by isHigh — the realized high-cost access
// fraction of the trace (the x-axis of Figure 3).
func MeasuredHAF(view []trace.SampleRef, blockBytes int, isHigh func(block uint64) bool) float64 {
	var high, total int64
	for _, r := range view {
		if r.Remote {
			continue
		}
		total++
		if isHigh(r.Addr / uint64(blockBytes)) {
			high++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(high) / float64(total)
}
