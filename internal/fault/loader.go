// Loader fault plans extend the deterministic fault subsystem to the serving
// engine's backend: where Plan degrades the simulated machine as a function
// of simulated time, a LoaderPlan degrades the simulated *backend* as a pure
// function of the backend-load attempt index ("op") and the key's cost
// class. Every retry is its own op, so same-seed closed-loop runs replay the
// exact same error/latency sequence and an empty LoaderPlan is bit-identical
// with an un-faulted run. See docs/FAULTS.md for the JSON schema and
// docs/ENGINE.md for how the engine's resilient load path reacts.
package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// ErrInjectedLoad is the error a faulted backend load returns. The engine's
// retry/breaker machinery treats it like any loader error; tests match it
// with errors.Is.
var ErrInjectedLoad = errors.New("fault: injected backend error")

// OpSpan is a backend-load activity interval over load-attempt indices: one
// shot during [StartOp, EndOp) when PeriodOps is zero, repeating every
// PeriodOps attempts otherwise (active whenever (op-StartOp) mod PeriodOps <
// EndOp-StartOp and op >= StartOp). Indices count loader invocations —
// misses plus retries — not requests, so plans stay meaningful however well
// the cache absorbs traffic.
type OpSpan struct {
	StartOp   int64 `json:"start_op"`
	EndOp     int64 `json:"end_op"`
	PeriodOps int64 `json:"period_ops,omitempty"`
}

// Active reports whether the span covers load attempt op.
func (s OpSpan) Active(op int64) bool {
	if op < s.StartOp {
		return false
	}
	if s.PeriodOps <= 0 {
		return op < s.EndOp
	}
	return (op-s.StartOp)%s.PeriodOps < s.EndOp-s.StartOp
}

func (s OpSpan) validate(kind string) error {
	if s.EndOp <= s.StartOp {
		return fmt.Errorf("fault: %s span [%d,%d) is empty", kind, s.StartOp, s.EndOp)
	}
	if s.StartOp < 0 {
		return fmt.Errorf("fault: %s span starts before op 0", kind)
	}
	if s.PeriodOps > 0 && s.PeriodOps < s.EndOp-s.StartOp {
		return fmt.Errorf("fault: %s span period %d shorter than its duration", kind, s.PeriodOps)
	}
	return nil
}

// ErrorBurst fails every matching backend load during the span. Class
// selects the cost class it hits (the key's miss cost; -1 for every class).
type ErrorBurst struct {
	Class int64 `json:"class"`
	OpSpan
}

// SlowSpike adds ExtraUnits cost units of simulated backend latency to every
// matching load during the span (the load generator sleeps ExtraUnits ×
// LoadDelay extra). Class -1 hits every class.
type SlowSpike struct {
	Class int64 `json:"class"`
	OpSpan
	ExtraUnits int64 `json:"extra_units"`
}

// Brownout fails a seeded FailFrac fraction of matching loads during the
// span — the partial-degradation shape that exercises failure-rate breakers.
// Class -1 hits every class; FailFrac 1 is a full outage of the class.
type Brownout struct {
	Class int64 `json:"class"`
	OpSpan
	FailFrac float64 `json:"fail_frac"`
}

// LoaderPlan is a complete backend fault schedule. The zero value is the
// empty plan: it injects nothing and is guaranteed bit-identical with an
// un-faulted run.
type LoaderPlan struct {
	// Name labels the plan in tables and manifests (scenario name or file).
	Name string `json:"name,omitempty"`
	// Seed drives the brownout coin flips (and records the generator seed
	// for scenario-built plans).
	Seed      uint64       `json:"seed,omitempty"`
	Bursts    []ErrorBurst `json:"error_bursts,omitempty"`
	Spikes    []SlowSpike  `json:"slow_spikes,omitempty"`
	Brownouts []Brownout   `json:"brownouts,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *LoaderPlan) Empty() bool {
	return p == nil || len(p.Bursts)+len(p.Spikes)+len(p.Brownouts) == 0
}

// Validate checks the plan's structural invariants.
func (p *LoaderPlan) Validate() error {
	if p == nil {
		return nil
	}
	for i, b := range p.Bursts {
		if err := b.validate(fmt.Sprintf("error_bursts[%d]", i)); err != nil {
			return err
		}
		if b.Class < -1 {
			return fmt.Errorf("fault: error_bursts[%d] class %d (want a cost class or -1 for all)", i, b.Class)
		}
	}
	for i, s := range p.Spikes {
		if err := s.validate(fmt.Sprintf("slow_spikes[%d]", i)); err != nil {
			return err
		}
		if s.ExtraUnits <= 0 {
			return fmt.Errorf("fault: slow_spikes[%d] needs extra_units > 0", i)
		}
		if s.Class < -1 {
			return fmt.Errorf("fault: slow_spikes[%d] class %d", i, s.Class)
		}
	}
	for i, b := range p.Brownouts {
		if err := b.validate(fmt.Sprintf("brownouts[%d]", i)); err != nil {
			return err
		}
		if b.FailFrac <= 0 || b.FailFrac > 1 {
			return fmt.Errorf("fault: brownouts[%d] fail_frac %g (want (0, 1])", i, b.FailFrac)
		}
		if b.Class < -1 {
			return fmt.Errorf("fault: brownouts[%d] class %d", i, b.Class)
		}
	}
	return nil
}

// Hash returns the hex SHA-256 of the plan's canonical JSON encoding — the
// identity manifests record. The empty plan hashes to "".
func (p *LoaderPlan) Hash() string {
	if p.Empty() {
		return ""
	}
	data, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("fault: loader plan hash encoding: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ParseLoaderJSON decodes and validates a loader plan document.
func ParseLoaderJSON(data []byte) (*LoaderPlan, error) {
	var p LoaderPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadLoaderFile loads and validates a loader plan from a JSON file.
func ReadLoaderFile(path string) (*LoaderPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParseLoaderJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	return p, nil
}

// WriteFile marshals the plan (indented, trailing newline) to path.
func (p *LoaderPlan) WriteFile(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoaderInjector answers "what happens to load attempt op of class c?" for
// one plan. Outcome is a pure function of (plan, op, class); the injector
// only adds atomic counters so drivers can record how much chaos a run
// actually saw. A nil injector injects nothing.
type LoaderInjector struct {
	plan   *LoaderPlan
	errors atomic.Int64 // loads failed by the plan
	slow   atomic.Int64 // extra latency units added by the plan
}

// NewLoaderInjector compiles plan (nil or empty plans yield a nil injector,
// the explicit "no chaos" representation).
func NewLoaderInjector(p *LoaderPlan) *LoaderInjector {
	if p.Empty() {
		return nil
	}
	return &LoaderInjector{plan: p}
}

// Plan returns the injector's plan (nil for a nil injector).
func (in *LoaderInjector) Plan() *LoaderPlan {
	if in == nil {
		return nil
	}
	return in.plan
}

// classMatch reports whether a fault declared for class sel hits class c.
func classMatch(sel, c int64) bool { return sel == -1 || sel == c }

// Outcome returns the fate of backend load attempt op for a key of cost
// class class: fail injects an error, extraUnits adds simulated latency
// (cost units). Deterministic: same (plan, op, class) always answers the
// same, concurrent callers only race on the telemetry counters.
func (in *LoaderInjector) Outcome(op, class int64) (fail bool, extraUnits int64) {
	if in == nil {
		return false, 0
	}
	for _, b := range in.plan.Bursts {
		if classMatch(b.Class, class) && b.Active(op) {
			in.errors.Add(1)
			return true, 0
		}
	}
	for _, b := range in.plan.Brownouts {
		if !classMatch(b.Class, class) || !b.Active(op) {
			continue
		}
		// An unbiased top-53-bit draw per attempt, seeded by the plan: the
		// same op always lands on the same side of the coin.
		h := hash64(in.plan.Seed ^ uint64(op)*0x9e3779b97f4a7c15)
		if b.FailFrac >= 1 || float64(h>>11)/float64(1<<53) < b.FailFrac {
			in.errors.Add(1)
			return true, 0
		}
	}
	for _, s := range in.plan.Spikes {
		if classMatch(s.Class, class) && s.Active(op) {
			extraUnits += s.ExtraUnits
		}
	}
	if extraUnits > 0 {
		in.slow.Add(extraUnits)
	}
	return false, extraUnits
}

// Errors returns how many loads the plan has failed so far.
func (in *LoaderInjector) Errors() int64 {
	if in == nil {
		return 0
	}
	return in.errors.Load()
}

// SlowUnits returns the total extra latency units the plan has added.
func (in *LoaderInjector) SlowUnits() int64 {
	if in == nil {
		return 0
	}
	return in.slow.Load()
}

// hash64 is the SplitMix64 finalizer (shared with the scenario generator).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// LoaderScenarioNames lists the built-in loader fault scenarios, the valid
// cachebench -fault.scenario values.
func LoaderScenarioNames() []string {
	return []string{"backend-brownout", "error-burst", "latency-spike", "mixed-chaos"}
}

// LoaderScenario builds a named loader plan. The seed perturbs span
// placement (and drives brownout coin flips) so repeated experiments can
// decorrelate; the same (name, seed) always yields the same plan.
//
//	backend-brownout  every high-cost (class 8) load fails over one long span
//	error-burst       short periodic all-class outage bursts
//	latency-spike     periodic all-class slow spans (+20 cost units)
//	mixed-chaos       brownout + bursts + spikes together
func LoaderScenario(name string, seed uint64) (*LoaderPlan, error) {
	p := &LoaderPlan{Name: name, Seed: seed}
	// jitter shifts a span start by up to `spread` attempts, seeded.
	jitter := func(salt, spread uint64) int64 {
		return int64(hash64(seed^salt) % spread)
	}
	// Spans are calibrated in backend load attempts, not requests: a warm
	// cache turns only its miss stream into loads (typically 10-20% of
	// requests), so the windows below land inside runs of a few tens of
	// thousands of requests.
	switch name {
	case "backend-brownout":
		start := 500 + jitter(0x61, 200)
		p.Brownouts = []Brownout{{
			Class:    8,
			OpSpan:   OpSpan{StartOp: start, EndOp: start + 4000},
			FailFrac: 1,
		}}
	case "error-burst":
		start := 300 + jitter(0x62, 100)
		p.Bursts = []ErrorBurst{{
			Class:  -1,
			OpSpan: OpSpan{StartOp: start, EndOp: start + 150, PeriodOps: 2000},
		}}
	case "latency-spike":
		start := 400 + jitter(0x63, 150)
		p.Spikes = []SlowSpike{{
			Class:      -1,
			OpSpan:     OpSpan{StartOp: start, EndOp: start + 300, PeriodOps: 2500},
			ExtraUnits: 20,
		}}
	case "mixed-chaos":
		bs := 700 + jitter(0x64, 200)
		p.Brownouts = []Brownout{{
			Class:    8,
			OpSpan:   OpSpan{StartOp: bs, EndOp: bs + 2500},
			FailFrac: 0.8,
		}}
		es := 250 + jitter(0x65, 80)
		p.Bursts = []ErrorBurst{{
			Class:  -1,
			OpSpan: OpSpan{StartOp: es, EndOp: es + 120, PeriodOps: 3000},
		}}
		ss := 450 + jitter(0x66, 120)
		p.Spikes = []SlowSpike{{
			Class:      -1,
			OpSpan:     OpSpan{StartOp: ss, EndOp: ss + 250, PeriodOps: 4000},
			ExtraUnits: 10,
		}}
	default:
		return nil, fmt.Errorf("fault: unknown loader scenario %q (valid: %v)", name, LoaderScenarioNames())
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fault: scenario %s built an invalid plan: %v", name, err))
	}
	return p, nil
}
