package alert

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"costcache/internal/obs"
	"costcache/internal/obs/tsdb"
)

// harness wires a registry, a 1s-step store and an engine, driven by a
// simulated clock: tick(f) runs f, advances one second and evaluates.
type harness struct {
	reg    *obs.Registry
	store  *tsdb.Store
	engine *Engine
	now    time.Time
}

func newHarness(t *testing.T, rules []Rule) *harness {
	t.Helper()
	reg := obs.NewRegistry()
	store := tsdb.New(tsdb.Config{Registry: reg,
		Resolutions: []tsdb.Resolution{{Step: time.Second, Slots: 64}}})
	h := &harness{reg: reg, store: store, now: time.Unix(0, 0)}
	store.Sample(h.now)
	h.engine = New(store, rules)
	return h
}

func (h *harness) tick(f func()) {
	if f != nil {
		f()
	}
	h.now = h.now.Add(time.Second)
	h.store.Sample(h.now)
	h.engine.Eval(h.now)
}

func staticRule(window, forD time.Duration) Rule {
	return Rule{
		Name:      "hit-rate-low",
		Query:     tsdb.Query{Kind: tsdb.Ratio, Num: []string{"engine_hits"}, Den: []string{"engine_hits", "engine_misses"}},
		Op:        Below,
		Threshold: 0.5,
		Window:    window,
		For:       forD,
	}
}

func TestStaticRuleLifecycle(t *testing.T) {
	h := newHarness(t, []Rule{staticRule(2*time.Second, 2*time.Second)})
	hits := h.reg.Counter("engine_hits")
	misses := h.reg.Counter("engine_misses")
	var sink bytes.Buffer
	h.engine.SetSink(&sink)

	healthy := func() { hits.Add(90); misses.Add(10) }
	degraded := func() { hits.Add(10); misses.Add(90) }

	// Warm-up + healthy traffic: inactive throughout.
	for i := 0; i < 4; i++ {
		h.tick(healthy)
	}
	if s := h.engine.Summaries(h.now)[0]; s.State != "inactive" || s.Fired != 0 {
		t.Fatalf("healthy state = %+v", s)
	}

	// Degrade. The 2s window still blends a healthy second at first; it
	// goes pending once the window is all-degraded, and fires after For.
	for i := 0; i < 6; i++ {
		h.tick(degraded)
	}
	s := h.engine.Summaries(h.now)[0]
	if s.State != "firing" || s.Fired != 1 {
		t.Fatalf("degraded state = %+v, want firing once", s)
	}

	// Recover: resolves back to inactive and firing duration stops accruing.
	for i := 0; i < 6; i++ {
		h.tick(healthy)
	}
	s = h.engine.Summaries(h.now)[0]
	if s.State != "inactive" || s.Fired != 1 || s.FiringNS <= 0 {
		t.Fatalf("recovered state = %+v", s)
	}

	// The sink saw the full lifecycle in order.
	events := strings.TrimSpace(sink.String())
	var seq []string
	for _, line := range strings.Split(events, "\n") {
		var ev struct {
			Kind string `json:"kind"`
			From string `json:"from"`
			To   string `json:"to"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Kind != "alert" {
			t.Fatalf("event kind = %q", ev.Kind)
		}
		seq = append(seq, ev.From+">"+ev.To)
	}
	want := []string{"inactive>pending", "pending>firing", "firing>inactive"}
	if strings.Join(seq, " ") != strings.Join(want, " ") {
		t.Fatalf("transition sequence = %v, want %v", seq, want)
	}
}

func TestBurnRateNeedsBothWindows(t *testing.T) {
	rule := Rule{
		Name:       "hit-rate-burn",
		Query:      tsdb.Query{Kind: tsdb.Ratio, Num: []string{"engine_misses"}, Den: []string{"engine_hits", "engine_misses"}},
		Objective:  0.9,
		BurnFactor: 2,
		Short:      2 * time.Second,
		Long:       10 * time.Second,
	}
	h := newHarness(t, []Rule{rule})
	hits := h.reg.Counter("engine_hits")
	misses := h.reg.Counter("engine_misses")

	healthy := func() { hits.Add(95); misses.Add(5) }   // miss ratio 0.05 < 0.2
	degraded := func() { hits.Add(40); misses.Add(60) } // miss ratio 0.6 > 0.2

	// Long window not covered yet: a degraded burst cannot fire.
	for i := 0; i < 3; i++ {
		h.tick(degraded)
	}
	if s := h.engine.Summaries(h.now)[0]; s.State != "inactive" {
		t.Fatalf("fired before long window was covered: %+v", s)
	}

	// Healthy long enough to cover the long window: still quiet, and a
	// 1-tick blip breaches the short window but not the long one.
	for i := 0; i < 10; i++ {
		h.tick(healthy)
	}
	h.tick(degraded)
	if s := h.engine.Summaries(h.now)[0]; s.State != "inactive" {
		t.Fatalf("short-window blip alone fired: %+v", s)
	}

	// Sustained degradation pushes both windows over: fires.
	for i := 0; i < 12; i++ {
		h.tick(degraded)
	}
	s := h.engine.Summaries(h.now)[0]
	if s.State != "firing" || s.Fired != 1 {
		t.Fatalf("sustained burn state = %+v, want firing", s)
	}
	if want := rule.BurnFactor * (1 - rule.Objective); s.Threshold != want {
		t.Fatalf("burn threshold = %v, want %v", s.Threshold, want)
	}
}

// TestDeterministicFiringCounts runs the same traffic twice and requires
// identical event streams — the property CI's same-seed smoke pins.
func TestDeterministicFiringCounts(t *testing.T) {
	run := func() string {
		h := newHarness(t, DefaultRules(Defaults{
			HitRateObjective: 0.9, BurnFactor: 2,
			Short: 2 * time.Second, Long: 10 * time.Second,
			P99: 250 * time.Millisecond,
		}))
		hits := h.reg.Counter("engine_hits")
		misses := h.reg.Counter("engine_misses")
		var sink bytes.Buffer
		h.engine.SetSink(&sink)
		for i := 0; i < 40; i++ {
			bad := i >= 15 && i < 30
			h.tick(func() {
				if bad {
					hits.Add(30)
					misses.Add(70)
				} else {
					hits.Add(97)
					misses.Add(3)
				}
			})
		}
		return sink.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("event streams diverged:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"rule":"hit-rate-burn","from":"pending","to":"firing"`) {
		t.Fatalf("degraded run never fired hit-rate-burn:\n%s", a)
	}
}

func TestHandlerShape(t *testing.T) {
	h := newHarness(t, []Rule{staticRule(time.Second, 0)})
	hits := h.reg.Counter("engine_hits")
	misses := h.reg.Counter("engine_misses")
	for i := 0; i < 3; i++ {
		h.tick(func() { hits.Add(10); misses.Add(90) })
	}

	rec := httptest.NewRecorder()
	Handler(h.engine, h.store.LastTime).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	var out struct {
		Rules  []Summary `json:"rules"`
		Events []Event   `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(out.Rules) != 1 || out.Rules[0].Rule != "hit-rate-low" {
		t.Fatalf("rules = %+v", out.Rules)
	}
	if out.Rules[0].State != "firing" {
		t.Fatalf("state = %q, want firing (For=0 fires immediately)", out.Rules[0].State)
	}
	if len(out.Events) < 2 {
		t.Fatalf("events = %+v, want pending+firing transitions", out.Events)
	}
}

func TestNewPanicsOnBadRules(t *testing.T) {
	reg := obs.NewRegistry()
	store := tsdb.New(tsdb.Config{Registry: reg})
	mustPanic := func(name string, rules []Rule) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		New(store, rules)
	}
	mustPanic("unnamed", []Rule{{Window: time.Second}})
	mustPanic("static without window", []Rule{{Name: "x"}})
	mustPanic("burn without windows", []Rule{{Name: "x", Objective: 0.9}})
}

// TestServerShedRateRule exercises the default server-shed-rate rule: silent
// with no serving tier (absent denominator), silent at a healthy shed share,
// firing once admission control sheds more than 5% of inbound frames.
func TestServerShedRateRule(t *testing.T) {
	var rule Rule
	for _, r := range DefaultRules(Defaults{
		HitRateObjective: 0.9, BurnFactor: 2,
		Short: 2 * time.Second, Long: 4 * time.Second, P99: time.Second,
	}) {
		if r.Name == "server-shed-rate" {
			rule = r
		}
	}
	if rule.Name == "" {
		t.Fatal("server-shed-rate missing from DefaultRules")
	}
	h := newHarness(t, []Rule{rule})

	// No server counters at all: the rule must stay inactive, not fire on a
	// zero denominator.
	for i := 0; i < 4; i++ {
		h.tick(nil)
	}
	if s := h.engine.Summaries(h.now)[0]; s.State != "inactive" {
		t.Fatalf("state with no serving tier = %q, want inactive", s.State)
	}

	frames := h.reg.Counter("server_frames_in")
	shed := h.reg.Counter("server_shed")
	h.tick(nil) // discovery sample for the new counters

	// Healthy: 1% shed share.
	for i := 0; i < 4; i++ {
		h.tick(func() { frames.Add(100); shed.Add(1) })
	}
	if s := h.engine.Summaries(h.now)[0]; s.State != "inactive" || s.Fired != 0 {
		t.Fatalf("healthy state = %+v, want inactive", s)
	}

	// Overload: 20% shed share breaches the 5% threshold.
	for i := 0; i < 4; i++ {
		h.tick(func() { frames.Add(100); shed.Add(20) })
	}
	if s := h.engine.Summaries(h.now)[0]; s.State != "firing" || s.Fired != 1 {
		t.Fatalf("overloaded state = %+v, want firing once", s)
	}
}
