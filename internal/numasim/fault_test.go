package numasim

import (
	"reflect"
	"testing"

	"costcache/internal/fault"
)

// TestEmptyPlanBitIdentical is the PR's hard invariant: a configured-but-empty
// fault plan must leave every figure of the run bit-identical with a run that
// never saw the fault subsystem.
func TestEmptyPlanBitIdentical(t *testing.T) {
	prog := smallProgram()
	base := Run(prog, DefaultConfig(lruFactory))

	cfg := DefaultConfig(lruFactory)
	cfg.Faults = &fault.Plan{Name: "empty"}
	faulted := Run(prog, cfg)

	if faulted.Faults == nil {
		t.Fatal("fault stats missing: the injector was not attached")
	}
	if *faulted.Faults != (fault.Stats{}) {
		t.Fatalf("empty plan injected faults: %+v", *faulted.Faults)
	}
	faulted.Faults = nil
	if !reflect.DeepEqual(base, faulted) {
		t.Fatalf("empty plan perturbed the run:\nbase    %+v\nfaulted %+v", base, faulted)
	}
}

// TestFaultedRunReproducible: same program, same plan, same seed — the whole
// Result must be bit-identical across runs.
func TestFaultedRunReproducible(t *testing.T) {
	plan, err := fault.Scenario("mixed", 7, DefaultConfig(nil).Net.Dim)
	if err != nil {
		t.Fatal(err)
	}
	prog := smallProgram()
	run := func() Result {
		cfg := DefaultConfig(lruFactory)
		cfg.Faults = plan
		return Run(prog, cfg)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan, different results:\na %+v\nb %+v", a, b)
	}
	if a.Faults.Events() == 0 {
		t.Fatal("mixed scenario injected nothing")
	}
}

// TestFaultsDegradeExecution: an outage plan must slow the run down and the
// counters must show why.
func TestFaultsDegradeExecution(t *testing.T) {
	prog := smallProgram()
	base := Run(prog, DefaultConfig(lruFactory))

	cfg := DefaultConfig(lruFactory)
	cfg.Faults = &fault.Plan{
		Name: "all-links-outage",
		Links: []fault.LinkFault{{Node: -1, Dir: "any", Outage: true,
			Window: fault.Window{EndNs: 25_000, PeriodNs: 100_000}}},
	}
	faulted := Run(prog, cfg)
	if faulted.ExecNs <= base.ExecNs {
		t.Fatalf("outage exec %d ns <= baseline %d ns", faulted.ExecNs, base.ExecNs)
	}
	if faulted.Faults.Nacks == 0 || faulted.Faults.BackoffNs == 0 {
		t.Fatalf("no NACK/backoff recorded: %+v", faulted.Faults)
	}
	if faulted.L2Misses != base.L2Misses {
		// Faults change timing, not the reference stream or the cache
		// contents under LRU (timing-independent replacement).
		t.Fatalf("outage changed LRU miss count: %d vs %d", faulted.L2Misses, base.L2Misses)
	}
}

// TestNodeDegradationCountsMisses: a whole-node window must charge exactly the
// misses issued inside it.
func TestNodeDegradationCountsMisses(t *testing.T) {
	prog := smallProgram()
	cfg := DefaultConfig(lruFactory)
	cfg.Faults = &fault.Plan{
		Name:  "always-slow-node0",
		Nodes: []fault.NodeFault{{Node: 0, Window: fault.Window{EndNs: 1, PeriodNs: 0}, ExtraNs: 200}},
	}
	// Window [0,1) is effectively a no-op: only a miss at exactly t=0 pays.
	res := Run(prog, cfg)
	if res.Faults.DegradedMisses > 1 {
		t.Fatalf("1-ns window degraded %d misses", res.Faults.DegradedMisses)
	}

	cfg.Faults = &fault.Plan{
		Name:  "slow-node0",
		Nodes: []fault.NodeFault{{Node: 0, Window: fault.Window{EndNs: 1 << 40}, ExtraNs: 200}},
	}
	res = Run(prog, cfg)
	if res.Faults.DegradedMisses != res.PerNode[0].Misses {
		t.Fatalf("degraded %d misses, node 0 issued %d", res.Faults.DegradedMisses, res.PerNode[0].Misses)
	}
	if res.Faults.NodeDegNs != 200*res.Faults.DegradedMisses {
		t.Fatalf("degradation ns %d, want 200 per miss", res.Faults.NodeDegNs)
	}
}

// TestStopReturnsPartialResult: Config.Stop ends the run at a reference
// boundary with Interrupted set and partial figures.
func TestStopReturnsPartialResult(t *testing.T) {
	prog := smallProgram()
	full := Run(prog, DefaultConfig(lruFactory))

	calls := 0
	cfg := DefaultConfig(lruFactory)
	cfg.Stop = func() bool { calls++; return calls > 1000 }
	res := Run(prog, cfg)
	if !res.Interrupted {
		t.Fatal("run not marked interrupted")
	}
	if res.Refs == 0 || res.Refs >= full.Refs {
		t.Fatalf("partial run executed %d of %d refs", res.Refs, full.Refs)
	}

	// A stop that never fires changes nothing.
	cfg = DefaultConfig(lruFactory)
	cfg.Stop = func() bool { return false }
	same := Run(prog, cfg)
	if !reflect.DeepEqual(full, same) {
		t.Fatal("inert Stop hook perturbed the run")
	}
}

// TestInvalidPlanPanics: Run must refuse a plan that fails validation rather
// than simulate nonsense.
func TestInvalidPlanPanics(t *testing.T) {
	cfg := DefaultConfig(lruFactory)
	cfg.Faults = &fault.Plan{Links: []fault.LinkFault{{Dir: "up", Outage: true,
		Window: fault.Window{EndNs: 100}}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted an invalid plan")
		}
	}()
	Run(smallProgram(), cfg)
}

// TestWatchdogLimitConfigurable: a tiny watchdog limit must not false-fire on
// a healthy run (progress resets the counter at every reference).
func TestWatchdogLimitConfigurable(t *testing.T) {
	cfg := DefaultConfig(lruFactory)
	cfg.Faults = &fault.Plan{Name: "empty"}
	cfg.WatchdogLimit = 1 << 16
	res := Run(smallProgram(), cfg)
	if res.ExecNs <= 0 {
		t.Fatal("run with watchdog produced no result")
	}
}
