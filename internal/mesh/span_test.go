package mesh

import (
	"testing"

	"costcache/internal/obs/span"
)

func TestSendRecordsHops(t *testing.T) {
	m := New(Default())
	tr := span.NewTracer(nil, nil)
	sp := tr.Begin(0, 0, false, 0)
	m.SetSpan(sp)

	// Node 0 to node 5 (1,1): 2 hops, dimension order.
	done := m.Send(0, 5, CtrlFlits, 0)
	if want := m.Hops(0, 5); len(sp.Hops) != want {
		t.Fatalf("recorded %d hops, want %d", len(sp.Hops), want)
	}
	// Hops chain: each starts where the previous ended, the last ends at the
	// arrival time, and an idle mesh has zero queueing.
	prev := int64(0 + m.p.NIRemote)
	for i, h := range sp.Hops {
		if h.Start != prev {
			t.Errorf("hop %d starts at %d, want %d", i, h.Start, prev)
		}
		if h.Queue != 0 {
			t.Errorf("hop %d queued %d ns on an idle mesh", i, h.Queue)
		}
		prev = h.End
	}
	if prev != done {
		t.Errorf("last hop ends at %d, message arrived at %d", prev, done)
	}
}

func TestSendQueueing(t *testing.T) {
	m := New(Default())
	tr := span.NewTracer(nil, nil)
	sp := tr.Begin(0, 0, false, 0)
	m.SetSpan(sp)
	m.Send(0, 3, DataFlits, 0) // occupy the eastbound links
	h0 := len(sp.Hops)
	done2 := m.Send(0, 3, CtrlFlits, 0)
	if sp.HopQueueNs() == 0 {
		t.Fatal("second message saw no queueing")
	}
	var queued int64
	for _, h := range sp.Hops[h0:] {
		queued += h.Queue
	}
	if queued != sp.HopQueueNs() {
		t.Errorf("per-hop queues sum to %d, span total %d", queued, sp.HopQueueNs())
	}
	if unloaded := m.Unloaded(0, 3, CtrlFlits); done2 <= unloaded {
		t.Errorf("loaded arrival %d not above unloaded %d", done2, unloaded)
	}
}

func TestLocalSendRecordsNoHops(t *testing.T) {
	m := New(Default())
	tr := span.NewTracer(nil, nil)
	sp := tr.Begin(0, 0, false, 0)
	m.SetSpan(sp)
	m.Send(2, 2, CtrlFlits, 0)
	if len(sp.Hops) != 0 {
		t.Fatalf("node-local send recorded %d hops", len(sp.Hops))
	}
	m.SetSpan(nil)
	m.Send(0, 5, CtrlFlits, 0)
	if len(sp.Hops) != 0 {
		t.Fatal("detached span still received hops")
	}
}

// TestSendNoAllocs pins the hot path: routing and hop recording reuse
// scratch buffers, so Send performs zero allocations either way.
func TestSendNoAllocs(t *testing.T) {
	m := New(Default())
	tr := span.NewTracer(nil, nil)
	sp := tr.Begin(0, 0, false, 0)
	now := int64(0)
	m.SetSpan(sp)
	for i := 0; i < 16; i++ { // warm the hop slice
		now = m.Send(0, 15, DataFlits, now)
	}
	sp.Hops = sp.Hops[:0]
	if avg := testing.AllocsPerRun(200, func() {
		now = m.Send(0, 15, DataFlits, now)
		sp.Hops = sp.Hops[:0]
	}); avg != 0 {
		t.Errorf("traced Send allocates %v allocs/op, want 0", avg)
	}
	m.SetSpan(nil)
	if avg := testing.AllocsPerRun(200, func() {
		now = m.Send(0, 15, DataFlits, now)
	}); avg != 0 {
		t.Errorf("untraced Send allocates %v allocs/op, want 0", avg)
	}
}
